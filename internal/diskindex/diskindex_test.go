package diskindex

import (
	"math/rand"
	"os"
	"testing"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/pager"
	"github.com/spine-index/spine/internal/suffixtree"
	"github.com/spine-index/spine/internal/trie"
)

func newSpine(t *testing.T, opts Options) *Spine {
	t.Helper()
	s, err := CreateSpine(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("CreateSpine: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newTree(t *testing.T, opts Options) *Tree {
	t.Helper()
	tr, err := CreateTree(t.TempDir(), 0, opts)
	if err != nil {
		t.Fatalf("CreateTree: %v", err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// TestDiskSpineMatchesMemory cross-checks the disk implementation against
// the in-memory reference on the paper example and random strings,
// including under a tiny buffer pool that forces heavy eviction.
func TestDiskSpineMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 8; trial++ {
		var text []byte
		if trial == 0 {
			text = []byte("aaccacaaca")
		} else {
			text = randomRepetitive(rng, 100+rng.Intn(200))
		}
		for _, bufPages := range []int{2, 64} {
			s, err := CreateSpine(t.TempDir(), Options{PageSize: 512, BufferPages: bufPages})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AppendAll(text); err != nil {
				t.Fatalf("AppendAll: %v", err)
			}
			mem := core.Build(text)
			o := trie.NewOracle(text)
			for q := 0; q < 150; q++ {
				m := 1 + rng.Intn(8)
				p := make([]byte, m)
				for i := range p {
					p[i] = "acgt"[rng.Intn(4)]
				}
				got, err := s.Find(p)
				if err != nil {
					t.Fatalf("Find: %v", err)
				}
				if want := mem.Find(p); got != want {
					t.Fatalf("buf=%d text=%q: disk Find(%q)=%d mem=%d", bufPages, text, p, got, want)
				}
				gotAll, err := s.FindAll(p)
				if err != nil {
					t.Fatalf("FindAll: %v", err)
				}
				if want := o.Occurrences(p); !equalInts(gotAll, want) && !(len(gotAll) == 0 && len(want) == 0) {
					t.Fatalf("buf=%d text=%q: disk FindAll(%q)=%v want %v", bufPages, text, p, gotAll, want)
				}
			}
			s.Close()
		}
	}
}

func TestDiskSpinePaperExample(t *testing.T) {
	s := newSpine(t, Options{PageSize: 512, BufferPages: 8})
	if err := s.AppendAll([]byte("aaccacaaca")); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Contains([]byte("accaa"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("disk index admitted the accaa false positive")
	}
	all, err := s.FindAll([]byte("ac"))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(all, []int{1, 4, 7}) {
		t.Fatalf("FindAll(ac) = %v, want [1 4 7]", all)
	}
}

func TestDiskSpineCursorMatchesMemoryCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	text := randomRepetitive(rng, 300)
	query := randomRepetitive(rng, 150)
	s := newSpine(t, Options{PageSize: 512, BufferPages: 4})
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	mem := core.Build(text)
	mc := core.NewCursor(mem)
	dc := s.NewCursor()
	for j, c := range query {
		mc.Advance(c)
		if err := dc.Advance(c); err != nil {
			t.Fatalf("disk Advance: %v", err)
		}
		if mc.Len != dc.Len || mc.Node != dc.Node {
			t.Fatalf("pos %d: mem (node %d, len %d) vs disk (node %d, len %d)",
				j, mc.Node, mc.Len, dc.Node, dc.Len)
		}
	}
	memEnds := mc.MatchEnds()
	diskEnds, err := dc.MatchEnds()
	if err != nil {
		t.Fatal(err)
	}
	if len(memEnds) != len(diskEnds) {
		t.Fatalf("MatchEnds lengths differ: %v vs %v", memEnds, diskEnds)
	}
	for i := range memEnds {
		if memEnds[i] != diskEnds[i] {
			t.Fatalf("MatchEnds differ: %v vs %v", memEnds, diskEnds)
		}
	}
}

// TestDiskSpineOverflowRibs exercises the overflow rib chain with a
// high-fanout protein-like root node.
func TestDiskSpineOverflowRibs(t *testing.T) {
	text := []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY")
	s := newSpine(t, Options{PageSize: 512, BufferPages: 4})
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	mem := core.Build(text)
	o := trie.NewOracle(text)
	for str := range o.SubstringSet(5) {
		got, err := s.Find([]byte(str))
		if err != nil {
			t.Fatal(err)
		}
		if want := mem.Find([]byte(str)); got != want {
			t.Fatalf("Find(%q) = %d, want %d", str, got, want)
		}
	}
	if s.ovfN == 0 {
		t.Fatal("no overflow ribs allocated; test did not exercise the chain")
	}
}

func TestDiskSpineIOCountersMove(t *testing.T) {
	s := newSpine(t, Options{PageSize: 512, BufferPages: 2})
	rng := rand.New(rand.NewSource(93))
	if err := s.AppendAll(randomRepetitive(rng, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.IOStats()
	if st.Writes == 0 {
		t.Fatal("no physical writes despite tiny pool")
	}
	if s.HitRate() <= 0 {
		t.Fatal("hit rate not tracked")
	}
}

func TestDiskSpineSyncOption(t *testing.T) {
	s := newSpine(t, Options{PageSize: 512, BufferPages: 2, Sync: true})
	if err := s.AppendAll([]byte("aaccacaaca")); err != nil {
		t.Fatalf("sync build failed: %v", err)
	}
}

func TestDiskSpineTopRetentionPolicy(t *testing.T) {
	s := newSpine(t, Options{PageSize: 512, BufferPages: 4, Policy: pager.TopRetention})
	rng := rand.New(rand.NewSource(94))
	text := randomRepetitive(rng, 1500)
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	mem := core.Build(text)
	for q := 0; q < 50; q++ {
		p := text[q : q+5]
		got, err := s.Find(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := mem.Find(p); got != want {
			t.Fatalf("Find(%q) = %d, want %d", p, got, want)
		}
	}
}

// --- Disk suffix tree ---

func TestDiskTreeMatchesMemoryTree(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	for trial := 0; trial < 6; trial++ {
		text := randomRepetitive(rng, 80+rng.Intn(200))
		dt := newTree(t, Options{PageSize: 512, BufferPages: 8})
		if err := dt.AppendAll(text); err != nil {
			t.Fatal(err)
		}
		if err := dt.Finish(); err != nil {
			t.Fatal(err)
		}
		mt, err := suffixtree.Build(text, 0)
		if err != nil {
			t.Fatal(err)
		}
		if dt.NodeCount() != mt.NodeCount() {
			t.Fatalf("node counts differ: disk %d vs mem %d", dt.NodeCount(), mt.NodeCount())
		}
		o := trie.NewOracle(text)
		for q := 0; q < 120; q++ {
			m := 1 + rng.Intn(8)
			p := make([]byte, m)
			for i := range p {
				p[i] = "acgt"[rng.Intn(4)]
			}
			got, err := dt.Contains(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := o.Contains(p); got != want {
				t.Fatalf("text=%q: disk Contains(%q)=%v want %v", text, p, got, want)
			}
			gotAll, err := dt.FindAll(p)
			if err != nil {
				t.Fatal(err)
			}
			if want := o.Occurrences(p); !equalInts(gotAll, want) && !(len(gotAll) == 0 && len(want) == 0) {
				t.Fatalf("text=%q: disk FindAll(%q)=%v want %v", text, p, gotAll, want)
			}
		}
	}
}

func TestDiskTreeCursorMatchesMemoryCursor(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	text := randomRepetitive(rng, 250)
	query := randomRepetitive(rng, 120)
	dt := newTree(t, Options{PageSize: 512, BufferPages: 4})
	if err := dt.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if err := dt.Finish(); err != nil {
		t.Fatal(err)
	}
	mt, err := suffixtree.Build(text, 0)
	if err != nil {
		t.Fatal(err)
	}
	mc := suffixtree.NewCursor(mt)
	dc := dt.NewCursor()
	for j, c := range query {
		mc.Advance(c)
		if err := dc.Advance(c); err != nil {
			t.Fatalf("disk Advance: %v", err)
		}
		if mc.Len() != dc.Len() {
			t.Fatalf("pos %d: mem len %d vs disk len %d", j, mc.Len(), dc.Len())
		}
	}
}

func TestDiskTreeRejectsTerminalAndLateAppend(t *testing.T) {
	dt := newTree(t, Options{PageSize: 512, BufferPages: 4})
	if err := dt.Append(0); err == nil {
		t.Fatal("terminal byte accepted")
	}
	if err := dt.AppendAll([]byte("acgt")); err != nil {
		t.Fatal(err)
	}
	if err := dt.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := dt.Append('a'); err == nil {
		t.Fatal("Append after Finish accepted")
	}
}

func TestCreateRejectsTinyPages(t *testing.T) {
	if _, err := CreateSpine(t.TempDir(), Options{PageSize: 32}); err == nil {
		t.Fatal("CreateSpine accepted page smaller than a record")
	}
	if _, err := CreateTree(t.TempDir(), 0, Options{PageSize: 32}); err == nil {
		t.Fatal("CreateTree accepted page smaller than a record")
	}
}

func randomRepetitive(rng *rand.Rand, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 10 && rng.Float64() < 0.5 {
			l := 1 + rng.Intn(10)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			s = append(s, s[start:start+l]...)
		} else {
			s = append(s, "acgt"[rng.Intn(4)])
		}
	}
	return s[:n]
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDiskSpineSurfacesIOFaults injects pager faults and checks that
// Append and queries return errors rather than panicking or silently
// corrupting results.
func TestDiskSpineSurfacesIOFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	text := randomRepetitive(rng, 3000)
	// A 2-page pool over a ~430-page-record index: every query and append
	// must go to disk.
	s := newSpine(t, Options{PageSize: 512, BufferPages: 2})
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(func(op string, page int32) error {
		return errInjected
	})
	// FindAll scans the whole backbone: with a tiny pool it must fault.
	if _, err := s.FindAll(text[:8]); err == nil {
		t.Fatal("injected fault not surfaced by FindAll")
	}
	// Appends also surface faults (reads along the link chain or dirty
	// evictions).
	appendFailed := false
	for i := 0; i < 100 && !appendFailed; i++ {
		if err := s.Append("acgt"[i%4]); err != nil {
			appendFailed = true
		}
	}
	if !appendFailed {
		t.Fatal("injected fault not surfaced by Append")
	}
	// After clearing the fault the index answers queries again.
	s.SetFaultHook(nil)
	occ, err := s.FindAll(text[:8])
	if err != nil {
		t.Fatalf("index unusable after fault cleared: %v", err)
	}
	if len(occ) == 0 || occ[0] != 0 {
		t.Fatalf("results corrupted after fault: %v", occ)
	}
}

var errInjected = errorString("injected I/O fault")

// TestSpinePersistenceRoundTrip builds, closes, reopens and queries a disk
// index, including the overflow file (protein fan-out).
func TestSpinePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(98))
	text := randomRepetitive(rng, 1200)
	s, err := CreateSpine(dir, Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenSpine(dir, Options{BufferPages: 4})
	if err != nil {
		t.Fatalf("OpenSpine: %v", err)
	}
	defer re.Close()
	if re.Len() != len(text) {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), len(text))
	}
	mem := core.Build(text)
	for q := 0; q < 100; q++ {
		off := rng.Intn(len(text) - 6)
		p := text[off : off+6]
		got, err := re.FindAll(p)
		if err != nil {
			t.Fatal(err)
		}
		want := mem.FindAll(p)
		if !equalInts(got, want) {
			t.Fatalf("reopened FindAll(%q) = %v, want %v", p, got, want)
		}
	}
	// The reopened index is still extendable online.
	before := re.Len()
	if err := re.AppendAll([]byte("acgtacgt")); err != nil {
		t.Fatal(err)
	}
	if re.Len() != before+8 {
		t.Fatalf("appended length = %d", re.Len())
	}
	mem2 := core.Build(append(append([]byte{}, text...), []byte("acgtacgt")...))
	got, err := re.FindAll([]byte("acgtacgt"))
	if err != nil {
		t.Fatal(err)
	}
	if want := mem2.FindAll([]byte("acgtacgt")); !equalInts(got, want) {
		t.Fatalf("post-append FindAll = %v, want %v", got, want)
	}
}

func TestSpinePersistenceOverflow(t *testing.T) {
	dir := t.TempDir()
	text := []byte("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY")
	s, err := CreateSpine(dir, Options{PageSize: 512, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if s.ovfN == 0 {
		t.Fatal("test needs overflow ribs")
	}
	wantOvf := s.ovfN
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSpine(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.ovfN != wantOvf {
		t.Fatalf("reopened ovfN = %d, want %d", re.ovfN, wantOvf)
	}
	pos, err := re.Find([]byte("WYA"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != 18 {
		t.Fatalf("Find(WYA) = %d, want 18", pos)
	}
}

func TestOpenSpineRejectsMissingOrCorruptMeta(t *testing.T) {
	if _, err := OpenSpine(t.TempDir(), Options{}); err == nil {
		t.Fatal("open of empty dir accepted")
	}
	dir := t.TempDir()
	s, err := CreateSpine(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll([]byte("acgtacgt")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	metaPath := dir + "/meta.spine"
	raw, err := os.ReadFile(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF // corrupt n
	if err := os.WriteFile(metaPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSpine(dir, Options{}); err == nil {
		t.Fatal("corrupt meta accepted")
	}
}

func TestSpinePersistenceEmptyIndex(t *testing.T) {
	dir := t.TempDir()
	s, err := CreateSpine(dir, Options{PageSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSpine(dir, Options{})
	if err != nil {
		t.Fatalf("OpenSpine(empty): %v", err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("Len = %d", re.Len())
	}
	ok, err := re.Contains([]byte("a"))
	if err != nil || ok {
		t.Fatalf("Contains on empty = (%v, %v)", ok, err)
	}
}

func TestTreePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(99))
	text := randomRepetitive(rng, 800)
	dt, err := CreateTree(dir, 0, Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if err := dt.Finish(); err != nil {
		t.Fatal(err)
	}
	nodeCount := dt.NodeCount()
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenTree(dir, Options{BufferPages: 6})
	if err != nil {
		t.Fatalf("OpenTree: %v", err)
	}
	defer re.Close()
	if re.Len() != len(text) || re.NodeCount() != nodeCount {
		t.Fatalf("reopened Len=%d nodes=%d, want %d/%d", re.Len(), re.NodeCount(), len(text), nodeCount)
	}
	mem, err := suffixtree.Build(text, 0)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 80; q++ {
		off := rng.Intn(len(text) - 6)
		p := text[off : off+6]
		got, err := re.FindAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := mem.FindAll(p); !equalInts(got, want) {
			t.Fatalf("reopened FindAll(%q) = %v, want %v", p, got, want)
		}
	}
}

func TestOpenTreeRejectsUnfinished(t *testing.T) {
	dir := t.TempDir()
	dt, err := CreateTree(dir, 0, Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := dt.AppendAll([]byte("acgtacgt")); err != nil {
		t.Fatal(err)
	}
	// No Finish: flush + close leaves an unfinished tree on disk.
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTree(dir, Options{}); err == nil {
		t.Fatal("unfinished tree accepted")
	}
}

// TestReopenedSpineCursorMatching checks the matching cursor works on a
// reopened index (the Table 7 path after persistence).
func TestReopenedSpineCursorMatching(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(100))
	text := randomRepetitive(rng, 600)
	s, err := CreateSpine(dir, Options{PageSize: 512, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendAll(text); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSpine(dir, Options{BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	mem := core.Build(text)
	mc := core.NewCursor(mem)
	dc := re.NewCursor()
	query := randomRepetitive(rng, 300)
	for j, c := range query {
		mc.Advance(c)
		if err := dc.Advance(c); err != nil {
			t.Fatal(err)
		}
		if mc.Len != dc.Len || mc.Node != dc.Node {
			t.Fatalf("pos %d: mem (%d,%d) vs reopened (%d,%d)", j, mc.Node, mc.Len, dc.Node, dc.Len)
		}
	}
}
