// Package diskindex provides disk-resident SPINE and suffix-tree indexes
// built on the pager substrate, reproducing the paper's §6.2 experiments:
// on-disk construction under synchronous writes, disk search, and the
// locality behaviour that gives SPINE its ~2x win (Figure 7, Table 7).
//
// Node records are fixed-size and page-packed, so a node access is one
// buffer-pool probe. SPINE records hold up to three inline ribs (the DNA
// worst case); larger fan-outs — possible on protein alphabets — chain
// into an overflow file.
package diskindex

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"github.com/spine-index/spine/internal/pager"
)

// SPINE disk record layout (little-endian, 72 bytes):
//
//	 0  link     int32
//	 4  lel      int32
//	 8  flags    byte (bit0: has extrib)
//	 9  ribN     byte (inline rib count, 0..3)
//	10  char     byte (vertebra label leaving this node)
//	12  ribs     3 x { cl byte, pad3, dest int32, pt int32 } = 36
//	48  ext      { dest int32, pt int32, prt int32, src int32 } = 16
//	(overflow chain id lives in flags' sibling word; see ovfOff)
const (
	spineRecSize = 72
	offLink      = 0
	offLEL       = 4
	offFlags     = 8
	offRibN      = 9
	offChar      = 10
	offRibs      = 12 // 3 x 12 bytes
	ribSlotSize  = 12
	offExt       = 48
	ovfOff       = 64 // overflow chain head (record id + 1; 0 = none)
	flagHasExt   = 1 << 0
	maxInline    = 3
	ovfRecSize   = 16 // cl byte, pad3, dest int32, pt int32, next int32 (+1 encoded)
)

// Options configures a disk index.
type Options struct {
	// PageSize in bytes (0 = pager default).
	PageSize int
	// Sync forces synchronous page writes, the paper's methodology.
	Sync bool
	// BufferPages is the buffer-pool capacity in pages (0 = 1024).
	BufferPages int
	// Policy selects the replacement policy.
	Policy pager.Policy
}

func (o Options) bufferPages() int {
	if o.BufferPages <= 0 {
		return 1024
	}
	return o.BufferPages
}

// Spine is a disk-resident SPINE index under construction or query.
type Spine struct {
	dir      string
	nodes    *pager.File
	ovf      *pager.File
	pool     *pager.Pool
	ovfPool  *pager.Pool
	pageSize int
	n        int32 // indexed characters
	ovfN     int32 // overflow records allocated
	recsPP   int32 // records per page
	ovfPP    int32
}

// CreateSpine creates an empty disk SPINE index in dir (files nodes.spine
// and ovf.spine).
func CreateSpine(dir string, opts Options) (*Spine, error) {
	nf, err := pager.Create(filepath.Join(dir, "nodes.spine"), pager.Options{PageSize: opts.PageSize, Sync: opts.Sync})
	if err != nil {
		return nil, err
	}
	of, err := pager.Create(filepath.Join(dir, "ovf.spine"), pager.Options{PageSize: opts.PageSize, Sync: opts.Sync})
	if err != nil {
		nf.Close()
		return nil, err
	}
	// The overflow pool is small: overflow traffic is rare by design.
	ovfPages := opts.bufferPages() / 8
	if ovfPages < 4 {
		ovfPages = 4
	}
	s := &Spine{
		dir:      dir,
		nodes:    nf,
		ovf:      of,
		pool:     pager.NewPool(nf, opts.bufferPages(), opts.Policy),
		ovfPool:  pager.NewPool(of, ovfPages, opts.Policy),
		pageSize: nf.PageSize(),
		recsPP:   int32(nf.PageSize() / spineRecSize),
		ovfPP:    int32(nf.PageSize() / ovfRecSize),
	}
	if s.recsPP == 0 {
		nf.Close()
		of.Close()
		return nil, fmt.Errorf("diskindex: page size %d smaller than record size %d", nf.PageSize(), spineRecSize)
	}
	return s, nil
}

// Len returns the number of indexed characters.
func (s *Spine) Len() int { return int(s.n) }

// SetFaultHook installs a fault-injection hook on the node file (see
// pager.File.SetFaultHook). For tests.
func (s *Spine) SetFaultHook(h func(op string, page int32) error) { s.nodes.SetFaultHook(h) }

// IOStats aggregates physical I/O over both files.
func (s *Spine) IOStats() pager.IOStats {
	ns, os_ := s.nodes.Stats(), s.ovf.Stats()
	return pager.IOStats{Reads: ns.Reads + os_.Reads, Writes: ns.Writes + os_.Writes}
}

// HitRate returns the node-file buffer pool hit rate.
func (s *Spine) HitRate() float64 { return s.pool.HitRate() }

// Flush writes all dirty pages and the meta record to disk; after a Flush
// the index can be reopened with OpenSpine.
func (s *Spine) Flush() error {
	if err := s.pool.Flush(); err != nil {
		return err
	}
	if err := s.ovfPool.Flush(); err != nil {
		return err
	}
	return s.writeMeta()
}

// Close flushes and closes the underlying files.
func (s *Spine) Close() error {
	flushErr := s.Flush()
	err1 := s.nodes.Close()
	err2 := s.ovf.Close()
	if flushErr != nil {
		return flushErr
	}
	if err1 != nil {
		return err1
	}
	return err2
}

// RemoveFiles deletes the index files (after Close). Intended for
// benchmarks that create throwaway indexes.
func (s *Spine) RemoveFiles() error {
	if err := os.Remove(filepath.Join(s.dir, "nodes.spine")); err != nil {
		return err
	}
	return os.Remove(filepath.Join(s.dir, "ovf.spine"))
}

// withNode pins the record of node i, applies fn, and unpins, marking the
// page dirty when write is set and fn succeeded.
func (s *Spine) withNode(i int32, write bool, fn func(rec []byte) error) error {
	page := i / s.recsPP
	off := int(i%s.recsPP) * spineRecSize
	data, err := s.pool.Get(page)
	if err != nil {
		return err
	}
	err = fn(data[off : off+spineRecSize])
	s.pool.Unpin(page, write && err == nil)
	return err
}

func (s *Spine) withOvf(id int32, write bool, fn func(rec []byte) error) error {
	page := id / s.ovfPP
	off := int(id%s.ovfPP) * ovfRecSize
	data, err := s.ovfPool.Get(page)
	if err != nil {
		return err
	}
	err = fn(data[off : off+ovfRecSize])
	s.ovfPool.Unpin(page, write && err == nil)
	return err
}

func le32(b []byte) int32       { return int32(binary.LittleEndian.Uint32(b)) }
func putLE32(b []byte, v int32) { binary.LittleEndian.PutUint32(b, uint32(v)) }

type diskRib struct {
	cl   byte
	dest int32
	pt   int32
}

type diskExt struct {
	dest, pt, prt, src int32
}

// readNode decodes the parts of node i's record needed by the walk.
func (s *Spine) readNode(i int32) (link, lel int32, ch byte, err error) {
	err = s.withNode(i, false, func(rec []byte) error {
		link, lel, ch = le32(rec[offLink:]), le32(rec[offLEL:]), rec[offChar]
		return nil
	})
	return
}

// findRibAt returns the rib labelled c at node t, scanning inline slots
// and, if needed, the overflow chain.
func (s *Spine) findRibAt(t int32, c byte) (diskRib, bool, error) {
	var out diskRib
	found := false
	var ovfHead int32
	err := s.withNode(t, false, func(rec []byte) error {
		n := int(rec[offRibN])
		inline := n
		if inline > maxInline {
			inline = maxInline
		}
		for j := 0; j < inline; j++ {
			slot := rec[offRibs+j*ribSlotSize:]
			if slot[0] == c {
				out = diskRib{cl: c, dest: le32(slot[4:]), pt: le32(slot[8:])}
				found = true
				return nil
			}
		}
		ovfHead = le32(rec[ovfOff:])
		return nil
	})
	if err != nil || found {
		return out, found, err
	}
	for id := ovfHead; id != 0; {
		var next int32
		err := s.withOvf(id-1, false, func(rec []byte) error {
			if rec[0] == c {
				out = diskRib{cl: c, dest: le32(rec[4:]), pt: le32(rec[8:])}
				found = true
			}
			next = le32(rec[12:])
			return nil
		})
		if err != nil {
			return out, false, err
		}
		if found {
			return out, true, nil
		}
		id = next
	}
	return out, false, nil
}

// addRibAt appends a rib at node t, spilling to the overflow chain when
// the inline slots are full.
func (s *Spine) addRibAt(t int32, r diskRib) error {
	needOvf := false
	err := s.withNode(t, true, func(rec []byte) error {
		n := int(rec[offRibN])
		if n < maxInline {
			slot := rec[offRibs+n*ribSlotSize:]
			slot[0] = r.cl
			putLE32(slot[4:], r.dest)
			putLE32(slot[8:], r.pt)
			rec[offRibN] = byte(n + 1)
			return nil
		}
		needOvf = true
		return nil
	})
	if err != nil || !needOvf {
		return err
	}
	// Allocate an overflow record and push it at the chain head.
	id := s.ovfN
	s.ovfN++
	if err := s.withOvf(id, true, func(rec []byte) error {
		rec[0] = r.cl
		putLE32(rec[4:], r.dest)
		putLE32(rec[8:], r.pt)
		return nil
	}); err != nil {
		return err
	}
	return s.withNode(t, true, func(rec []byte) error {
		oldHead := le32(rec[ovfOff:])
		putLE32(rec[ovfOff:], id+1)
		rec[offRibN]++
		return s.withOvf(id, true, func(orec []byte) error {
			putLE32(orec[12:], oldHead)
			return nil
		})
	})
}

func (s *Spine) extribAt(t int32) (diskExt, bool, error) {
	var out diskExt
	has := false
	err := s.withNode(t, false, func(rec []byte) error {
		if rec[offFlags]&flagHasExt == 0 {
			return nil
		}
		has = true
		out = diskExt{
			dest: le32(rec[offExt:]),
			pt:   le32(rec[offExt+4:]),
			prt:  le32(rec[offExt+8:]),
			src:  le32(rec[offExt+12:]),
		}
		return nil
	})
	return out, has, err
}

func (s *Spine) setExtribAt(t int32, x diskExt) error {
	return s.withNode(t, true, func(rec []byte) error {
		if rec[offFlags]&flagHasExt != 0 {
			return fmt.Errorf("diskindex: node %d already has an extrib", t)
		}
		rec[offFlags] |= flagHasExt
		putLE32(rec[offExt:], x.dest)
		putLE32(rec[offExt+4:], x.pt)
		putLE32(rec[offExt+8:], x.prt)
		putLE32(rec[offExt+12:], x.src)
		return nil
	})
}

func (s *Spine) setLinkOf(node, dest, lel int32) error {
	return s.withNode(node, true, func(rec []byte) error {
		putLE32(rec[offLink:], dest)
		putLE32(rec[offLEL:], lel)
		return nil
	})
}

// Append extends the disk index by one character — the same construction
// walk as the in-memory index (see internal/core), with every node access
// routed through the buffer pool.
func (s *Spine) Append(c byte) error {
	k := s.n
	s.n++
	newNode := k + 1
	// Record the vertebra label on node k.
	if err := s.withNode(k, true, func(rec []byte) error {
		rec[offChar] = c
		return nil
	}); err != nil {
		return err
	}
	if k == 0 {
		return s.setLinkOf(newNode, 0, 0)
	}
	t, L, _, err := s.readNode(k)
	if err != nil {
		return err
	}
	for {
		_, _, ch, err := s.readNode(t)
		if err != nil {
			return err
		}
		if ch == c && t < k { // vertebra exists (t < k always holds on the chain)
			return s.setLinkOf(newNode, t+1, L+1)
		}
		r, ok, err := s.findRibAt(t, c)
		if err != nil {
			return err
		}
		if ok {
			if L <= r.pt {
				return s.setLinkOf(newNode, r.dest, L+1)
			}
			return s.handleExtribs(t, r, L, newNode)
		}
		if err := s.addRibAt(t, diskRib{cl: c, dest: newNode, pt: L}); err != nil {
			return err
		}
		if t == 0 {
			return s.setLinkOf(newNode, 0, 0)
		}
		link, lel, _, err := s.readNode(t)
		if err != nil {
			return err
		}
		t, L = link, lel
	}
}

func (s *Spine) handleExtribs(t int32, r diskRib, L, newNode int32) error {
	lastDest, lastPT := r.dest, r.pt
	node := r.dest
	for {
		x, has, err := s.extribAt(node)
		if err != nil {
			return err
		}
		if !has {
			break
		}
		if x.src == t && x.prt == r.pt {
			if x.pt >= L {
				return s.setLinkOf(newNode, x.dest, L+1)
			}
			lastDest, lastPT = x.dest, x.pt
		}
		node = x.dest
	}
	if err := s.setExtribAt(node, diskExt{dest: newNode, pt: L, prt: r.pt, src: t}); err != nil {
		return err
	}
	return s.setLinkOf(newNode, lastDest, lastPT+1)
}

// AppendAll appends every byte of data.
func (s *Spine) AppendAll(data []byte) error {
	for _, c := range data {
		if err := s.Append(c); err != nil {
			return err
		}
	}
	return nil
}
