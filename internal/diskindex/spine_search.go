package diskindex

// step advances a valid path (node v, length pathlen) by character c; the
// disk analogue of the in-memory engine's transition.
func (s *Spine) step(v, pathlen int32, c byte) (int32, bool, error) {
	if v < s.n {
		_, _, ch, err := s.readNode(v)
		if err != nil {
			return 0, false, err
		}
		if ch == c {
			return v + 1, true, nil
		}
	}
	r, ok, err := s.findRibAt(v, c)
	if err != nil || !ok {
		return 0, false, err
	}
	if pathlen <= r.pt {
		return r.dest, true, nil
	}
	node := r.dest
	for {
		x, has, err := s.extribAt(node)
		if err != nil {
			return 0, false, err
		}
		if !has {
			return 0, false, nil
		}
		if x.src == v && x.prt == r.pt && x.pt >= pathlen {
			return x.dest, true, nil
		}
		node = x.dest
	}
}

// EndNode locates the valid path spelling p; found is false if p does not
// occur.
func (s *Spine) EndNode(p []byte) (end int32, found bool, err error) {
	v := int32(0)
	for i, c := range p {
		v, found, err = s.step(v, int32(i), c)
		if err != nil || !found {
			return 0, false, err
		}
	}
	return v, true, nil
}

// Contains reports whether p occurs in the indexed text.
func (s *Spine) Contains(p []byte) (bool, error) {
	_, ok, err := s.EndNode(p)
	return ok, err
}

// Find returns the first-occurrence start of p, or -1.
func (s *Spine) Find(p []byte) (int, error) {
	end, ok, err := s.EndNode(p)
	if err != nil || !ok {
		return -1, err
	}
	return int(end) - len(p), nil
}

// FindAll returns every occurrence start of p in increasing order (nil if
// absent): the first occurrence by valid-path search, the rest by the
// backbone target-buffer scan.
func (s *Spine) FindAll(p []byte) ([]int, error) {
	if len(p) == 0 {
		out := make([]int, s.n+1)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	first, ok, err := s.EndNode(p)
	if err != nil || !ok {
		return nil, err
	}
	buf := []int32{first}
	m := int32(len(p))
	for j := first + 1; j <= s.n; j++ {
		link, lel, _, err := s.readNode(j)
		if err != nil {
			return nil, err
		}
		if lel >= m && containsSorted(buf, link) {
			buf = append(buf, j)
		}
	}
	out := make([]int, len(buf))
	for i, e := range buf {
		out[i] = int(e) - len(p)
	}
	return out, nil
}

func containsSorted(buf []int32, x int32) bool {
	lo, hi := 0, len(buf)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if buf[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(buf) && buf[lo] == x
}

// ScanMany resolves many matches' occurrence-end sets in one sequential
// pass over the backbone — the §4 deferred enumeration, which matters most
// on disk: one scan reads each node page once instead of once per match.
// firsts[i] is match i's first-occurrence end node, lens[i] its length.
func (s *Spine) ScanMany(firsts, lens []int32) ([][]int32, error) {
	out := make([][]int32, len(firsts))
	if len(firsts) == 0 {
		return out, nil
	}
	owners := make(map[int32][]int32)
	minFirst := firsts[0]
	for i := range firsts {
		out[i] = []int32{firsts[i]}
		owners[firsts[i]] = append(owners[firsts[i]], int32(i))
		if firsts[i] < minFirst {
			minFirst = firsts[i]
		}
	}
	for j := minFirst + 1; j <= s.n; j++ {
		link, lel, _, err := s.readNode(j)
		if err != nil {
			return nil, err
		}
		ms, ok := owners[link]
		if !ok {
			continue
		}
		for _, m := range ms {
			if lel >= lens[m] && j > firsts[m] {
				out[m] = append(out[m], j)
				owners[j] = append(owners[j], m)
			}
		}
	}
	return out, nil
}

// SpineCursor is the disk analogue of the in-memory matching-statistics
// cursor (see internal/core.Cursor); every probe goes through the buffer
// pool, so Checked also approximates the page-access pattern.
type SpineCursor struct {
	s *Spine
	// Node and Len identify the current match: text[Node-Len:Node].
	Node, Len int32
	// Checked counts nodes examined.
	Checked int64
}

// NewCursor returns a matching cursor over the disk index.
func (s *Spine) NewCursor() *SpineCursor { return &SpineCursor{s: s} }

// Advance consumes one query character.
func (c *SpineCursor) Advance(ch byte) error {
	for {
		c.Checked++
		next, matched, ok, err := c.bestExtension(ch)
		if err != nil {
			return err
		}
		if ok {
			c.Node, c.Len = next, matched+1
			return nil
		}
		if c.Node == 0 && c.Len == 0 {
			return nil
		}
		link, lel, _, err := c.s.readNode(c.Node)
		if err != nil {
			return err
		}
		c.Node, c.Len = link, lel
	}
}

func (c *SpineCursor) bestExtension(ch byte) (next, matched int32, ok bool, err error) {
	s := c.s
	v := c.Node
	if v < s.n {
		_, _, vch, err := s.readNode(v)
		if err != nil {
			return 0, 0, false, err
		}
		if vch == ch {
			return v + 1, c.Len, true, nil
		}
	}
	r, found, err := s.findRibAt(v, ch)
	if err != nil || !found {
		return 0, 0, false, err
	}
	if c.Len <= r.pt {
		return r.dest, c.Len, true, nil
	}
	bestDest, bestPT := r.dest, r.pt
	node := r.dest
	for {
		x, has, err := s.extribAt(node)
		if err != nil {
			return 0, 0, false, err
		}
		if !has {
			break
		}
		c.Checked++
		if x.src == v && x.prt == r.pt {
			if x.pt >= c.Len {
				return x.dest, c.Len, true, nil
			}
			bestDest, bestPT = x.dest, x.pt
		}
		node = x.dest
	}
	return bestDest, bestPT, true, nil
}

// MatchEnds returns every end position of the current match.
func (c *SpineCursor) MatchEnds() ([]int32, error) {
	if c.Len == 0 {
		return nil, nil
	}
	s := c.s
	buf := []int32{c.Node}
	for j := c.Node + 1; j <= s.n; j++ {
		link, lel, _, err := s.readNode(j)
		if err != nil {
			return nil, err
		}
		if lel >= c.Len && containsSorted(buf, link) {
			buf = append(buf, j)
		}
	}
	return buf, nil
}
