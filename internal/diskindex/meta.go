package diskindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/spine-index/spine/internal/pager"
)

// ErrPageSizeMismatch reports an OpenSpine whose Options.PageSize
// disagrees with the page size stored in the index metadata. The stored
// size is authoritative — the page files were written with it — so a
// conflicting request is a caller error, not something to paper over.
var ErrPageSizeMismatch = errors.New("diskindex: page size mismatch")

// Meta file for a disk SPINE index: the counters that cannot be recovered
// from the page files alone. Written on Flush/Close, verified on Open.
//
//	magic "SPDM" | version u16 | pageSize u32 | n u32 | ovfN u32 | crc32
const (
	metaMagic   = "SPDM"
	metaVersion = uint16(1)
	metaSize    = 4 + 2 + 4 + 4 + 4 + 4
	metaFile    = "meta.spine"
)

func (s *Spine) writeMeta() error {
	buf := make([]byte, metaSize)
	copy(buf, metaMagic)
	binary.LittleEndian.PutUint16(buf[4:], metaVersion)
	binary.LittleEndian.PutUint32(buf[6:], uint32(s.pageSize))
	binary.LittleEndian.PutUint32(buf[10:], uint32(s.n))
	binary.LittleEndian.PutUint32(buf[14:], uint32(s.ovfN))
	binary.LittleEndian.PutUint32(buf[18:], crc32.ChecksumIEEE(buf[:18]))
	tmp := filepath.Join(s.dir, metaFile+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("diskindex: writing meta: %w", err)
	}
	return os.Rename(tmp, filepath.Join(s.dir, metaFile))
}

func readMeta(dir string) (pageSize int, n, ovfN int32, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("diskindex: reading meta: %w", err)
	}
	if len(buf) != metaSize || string(buf[:4]) != metaMagic {
		return 0, 0, 0, fmt.Errorf("diskindex: %s is not a SPINE meta file", metaFile)
	}
	if v := binary.LittleEndian.Uint16(buf[4:]); v != metaVersion {
		return 0, 0, 0, fmt.Errorf("diskindex: unsupported meta version %d", v)
	}
	if got, want := crc32.ChecksumIEEE(buf[:18]), binary.LittleEndian.Uint32(buf[18:]); got != want {
		return 0, 0, 0, fmt.Errorf("diskindex: meta checksum mismatch")
	}
	return int(binary.LittleEndian.Uint32(buf[6:])),
		int32(binary.LittleEndian.Uint32(buf[10:])),
		int32(binary.LittleEndian.Uint32(buf[14:])),
		nil
}

// OpenSpine opens a disk SPINE index previously built in dir and flushed
// or closed. The page size is taken from the meta file; a non-zero
// opts.PageSize must agree with it (ErrPageSizeMismatch otherwise).
// Other options (buffering, sync) come from opts.
func OpenSpine(dir string, opts Options) (*Spine, error) {
	pageSize, n, ovfN, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	if opts.PageSize != 0 && opts.PageSize != pageSize {
		return nil, fmt.Errorf("%w: requested %d, index built with %d", ErrPageSizeMismatch, opts.PageSize, pageSize)
	}
	popts := pager.Options{PageSize: pageSize, Sync: opts.Sync}
	nf, err := pager.Open(filepath.Join(dir, "nodes.spine"), popts)
	if err != nil {
		return nil, err
	}
	of, err := pager.Open(filepath.Join(dir, "ovf.spine"), popts)
	if err != nil {
		nf.Close()
		return nil, err
	}
	ovfPages := opts.bufferPages() / 8
	if ovfPages < 4 {
		ovfPages = 4
	}
	s := &Spine{
		dir:      dir,
		nodes:    nf,
		ovf:      of,
		pool:     pager.NewPool(nf, opts.bufferPages(), opts.Policy),
		ovfPool:  pager.NewPool(of, ovfPages, opts.Policy),
		pageSize: nf.PageSize(),
		n:        n,
		ovfN:     ovfN,
		recsPP:   int32(nf.PageSize() / spineRecSize),
		ovfPP:    int32(nf.PageSize() / ovfRecSize),
	}
	if s.recsPP == 0 {
		s.nodes.Close()
		s.ovf.Close()
		return nil, fmt.Errorf("diskindex: page size %d smaller than record size %d", nf.PageSize(), spineRecSize)
	}
	// Sanity: the node file must cover all n+1 records (an empty index has
	// no written pages; reads of unwritten pages return zeroes).
	needPages := (n + 1 + s.recsPP - 1) / s.recsPP
	if n > 0 && nf.Pages() < needPages {
		s.nodes.Close()
		s.ovf.Close()
		return nil, fmt.Errorf("diskindex: node file has %d pages, need %d for %d nodes (index not flushed?)",
			nf.Pages(), needPages, n+1)
	}
	return s, nil
}
