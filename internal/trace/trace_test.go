package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start(StageDescend)
	sp.C.Nodes = 5
	sp.End()
	tr.Add(StageMerge, time.Millisecond, Counters{Nodes: 1})
	tr.Adopt(New(), 0)
	tr.SetEndpoint("x")
	tr.SetPattern([]byte("p"))
	tr.SetNodesChecked(9)
	tr.SetTruncated(true)
	if tr.Records() != nil || tr.TotalNodes() != 0 {
		t.Fatal("nil trace recorded something")
	}
	e := tr.Entry(time.Now(), "ep", 200, time.Second)
	if e.Endpoint != "ep" || e.Stages != nil {
		t.Fatalf("nil trace entry = %+v", e)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("background context should carry no trace")
	}
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Fatal("nil trace should not wrap the context")
	}
}

func TestSpanRecording(t *testing.T) {
	tr := New()
	sp := tr.Start(StageDescend)
	sp.C = Counters{Nodes: 7, RibHops: 2, ExtribHops: 1}
	sp.End()
	tr.Add(StageOccurrences, 3*time.Millisecond, Counters{Nodes: 100, Links: 100})
	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Stage != StageDescend || recs[0].Nodes != 7 || recs[0].Shard != -1 {
		t.Fatalf("descend record wrong: %+v", recs[0])
	}
	if recs[1].Duration != 3*time.Millisecond || recs[1].Links != 100 {
		t.Fatalf("occurrences record wrong: %+v", recs[1])
	}
	if tr.TotalNodes() != 107 {
		t.Fatalf("TotalNodes = %d, want 107", tr.TotalNodes())
	}
}

func TestAdoptStampsShard(t *testing.T) {
	parent := New()
	var wg sync.WaitGroup
	kids := make([]*Trace, 4)
	for i := range kids {
		kids[i] = New()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kids[i].Add(StageDescend, time.Microsecond, Counters{Nodes: int64(i)})
			kids[i].Add(StageShard, time.Microsecond, Counters{})
		}(i)
	}
	wg.Wait()
	for i, k := range kids {
		parent.Adopt(k, i)
	}
	recs := parent.Records()
	if len(recs) != 8 {
		t.Fatalf("records = %d, want 8", len(recs))
	}
	seen := map[int]bool{}
	for _, r := range recs {
		if r.Shard < 0 || r.Shard > 3 {
			t.Fatalf("unstamped record: %+v", r)
		}
		seen[r.Shard] = true
	}
	if len(seen) != 4 {
		t.Fatalf("shards seen = %v, want 4 distinct", seen)
	}
}

func TestSummarizeGroupsByStageAndShard(t *testing.T) {
	recs := []Record{
		{Stage: StageDescend, Shard: 0, Duration: time.Millisecond, Counters: Counters{Nodes: 3}},
		{Stage: StageDescend, Shard: 0, Duration: time.Millisecond, Counters: Counters{Nodes: 4}},
		{Stage: StageDescend, Shard: 1, Duration: time.Millisecond, Counters: Counters{Nodes: 5}},
		{Stage: StageMerge, Shard: -1, Duration: 2 * time.Millisecond},
	}
	sums := Summarize(recs)
	if len(sums) != 3 {
		t.Fatalf("summaries = %d, want 3", len(sums))
	}
	if sums[0].Spans != 2 || sums[0].Nodes != 7 || sums[0].DurationUs != 2000 {
		t.Fatalf("shard-0 descend summary wrong: %+v", sums[0])
	}
	if sums[2].Stage != StageMerge || sums[2].Shard != -1 {
		t.Fatalf("merge summary wrong: %+v", sums[2])
	}
}

func TestEntryNodesFallbackToSpanSum(t *testing.T) {
	tr := New()
	tr.Add(StageDescend, time.Microsecond, Counters{Nodes: 10})
	tr.Add(StageOccurrences, time.Microsecond, Counters{Nodes: 32})
	e := tr.Entry(time.Now(), "findall", 200, 5*time.Millisecond)
	if e.NodesChecked != 42 {
		t.Fatalf("fallback NodesChecked = %d, want 42", e.NodesChecked)
	}
	tr.SetNodesChecked(40)
	tr.SetTruncated(true)
	tr.SetPattern([]byte("acgt"))
	e = tr.Entry(time.Now(), "findall", 200, 5*time.Millisecond)
	if e.NodesChecked != 40 || !e.Truncated || e.Pattern.Len != 4 {
		t.Fatalf("explicit entry wrong: %+v", e)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start(StageOccurrences)
				sp.C.Nodes = 1
				sp.End()
				_ = tr.Records()
				_ = tr.TotalNodes()
			}
		}()
	}
	wg.Wait()
	if n := tr.TotalNodes(); n != 1600 {
		t.Fatalf("TotalNodes = %d, want 1600", n)
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0).Sample() {
		t.Fatal("rate 0 sampled")
	}
	var nilSampler *Sampler
	if nilSampler.Sample() {
		t.Fatal("nil sampler sampled")
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate 1 must always sample")
		}
	}
	s := NewSampler(4)
	hits := 0
	for i := 0; i < 400; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1-in-4 sampler hit %d/400, want 100", hits)
	}
}

func TestFingerprint(t *testing.T) {
	fp := FingerprintOf([]byte("acgtacgt"))
	if fp.Len != 8 || fp.Prefix != "acgtacgt" || len(fp.Hash) != 16 {
		t.Fatalf("fingerprint wrong: %+v", fp)
	}
	if FingerprintOf([]byte("acgtacgt")).Hash != fp.Hash {
		t.Fatal("fingerprint not deterministic")
	}
	if FingerprintOf([]byte("acgtacga")).Hash == fp.Hash {
		t.Fatal("distinct patterns should hash apart")
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = byte(i) // includes unprintables
	}
	fp = FingerprintOf(long)
	if fp.Len != 100 || len(fp.Prefix) != fingerprintPrefixLen {
		t.Fatalf("long fingerprint wrong: %+v", fp)
	}
	for _, c := range fp.Prefix[:32] {
		if c > unicodeMaxASCIIForTest {
			t.Fatalf("unsanitized prefix: %q", fp.Prefix)
		}
	}
}

const unicodeMaxASCIIForTest = 127

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(3, 10*time.Millisecond)
	if l.Threshold() != 10*time.Millisecond {
		t.Fatal("threshold lost")
	}
	for i := 0; i < 5; i++ {
		l.Add(Entry{Status: i})
	}
	entries, total := l.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(entries) != 3 {
		t.Fatalf("retained = %d, want 3", len(entries))
	}
	// Newest first: statuses 4, 3, 2.
	for i, want := range []int{4, 3, 2} {
		if entries[i].Status != want {
			t.Fatalf("entry %d status = %d, want %d", i, entries[i].Status, want)
		}
	}
}

func TestSlowLogPartialFill(t *testing.T) {
	l := NewSlowLog(8, 0)
	l.Add(Entry{Status: 1})
	l.Add(Entry{Status: 2})
	entries, total := l.Snapshot()
	if total != 2 || len(entries) != 2 {
		t.Fatalf("snapshot = %d entries / total %d, want 2/2", len(entries), total)
	}
	if entries[0].Status != 2 || entries[1].Status != 1 {
		t.Fatalf("order wrong: %+v", entries)
	}
}
