package trace

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"
	"unicode"
)

// Sampler decides per-query whether to allocate a full trace: 1-in-N
// with an atomic counter, so the decision is one atomic add. Rate 1
// traces every query, rate 0 (or negative) none.
type Sampler struct {
	rate int64
	n    atomic.Int64
}

// NewSampler returns a 1-in-rate sampler.
func NewSampler(rate int) *Sampler { return &Sampler{rate: int64(rate)} }

// Sample reports whether this query should carry a full trace.
func (s *Sampler) Sample() bool {
	if s == nil || s.rate <= 0 {
		return false
	}
	if s.rate == 1 {
		return true
	}
	return s.n.Add(1)%s.rate == 1
}

// Fingerprint identifies a query pattern without retaining it: an FNV-1a
// hash to group recurring offenders, the length, and a short sanitized
// prefix for human eyes.
type Fingerprint struct {
	Hash   string `json:"hash"`
	Len    int    `json:"len"`
	Prefix string `json:"prefix"`
}

// fingerprintPrefixLen bounds the stored pattern prefix.
const fingerprintPrefixLen = 32

// FingerprintOf fingerprints p.
func FingerprintOf(p []byte) Fingerprint {
	h := fnv.New64a()
	h.Write(p)
	n := len(p)
	if n > fingerprintPrefixLen {
		n = fingerprintPrefixLen
	}
	prefix := make([]byte, 0, n)
	for _, c := range p[:n] {
		if c > unicode.MaxASCII || !unicode.IsPrint(rune(c)) {
			c = '.'
		}
		prefix = append(prefix, c)
	}
	return Fingerprint{
		Hash:   fmt.Sprintf("%016x", h.Sum64()),
		Len:    len(p),
		Prefix: string(prefix),
	}
}

// Entry is one slow query, with the per-stage breakdown that tells
// backbone descent apart from rib/extrib chain walks, occurrence
// scanning and shard fan-out.
type Entry struct {
	Time     time.Time `json:"time"`
	Endpoint string    `json:"endpoint"`
	Status   int       `json:"status"`
	// RequestID is the request's correlation id — the join key against
	// exported wide events and per-request log lines.
	RequestID string `json:"requestId,omitempty"`
	// Source is the serving layer that answered: scan, cache or
	// negfilter.
	Source string `json:"source,omitempty"`
	// DurationUs is the whole request's wall time in microseconds.
	DurationUs int64       `json:"durationUs"`
	Pattern    Fingerprint `json:"pattern"`
	// NodesChecked is the query's reported §4.1 work total; the Nodes
	// counters of Stages sum to it.
	NodesChecked int64          `json:"nodesChecked"`
	Truncated    bool           `json:"truncated"`
	Stages       []StageSummary `json:"stages"`
}

// Entry builds a slow-log entry from the trace's records and query
// identity. On a nil trace it returns a bare entry with no breakdown.
func (t *Trace) Entry(now time.Time, endpoint string, status int, elapsed time.Duration) Entry {
	e := Entry{Time: now, Endpoint: endpoint, Status: status, DurationUs: elapsed.Microseconds()}
	if t == nil {
		return e
	}
	t.mu.Lock()
	recs := append([]Record(nil), t.recs...)
	if t.endpoint != "" {
		e.Endpoint = t.endpoint
	}
	e.RequestID = t.requestID
	e.Source = t.source
	e.Pattern = t.pattern
	e.Truncated = t.truncated
	nodes, nodesSet := t.nodesChecked, t.nodesSet
	t.mu.Unlock()
	e.Stages = Summarize(recs)
	if nodesSet {
		e.NodesChecked = nodes
	} else {
		for _, s := range e.Stages {
			e.NodesChecked += s.Nodes
		}
	}
	return e
}

// SlowLog is a fixed-size ring buffer of slow-query entries. Writes are
// mutex-guarded but only happen for queries over the threshold, so the
// fast path never touches it.
type SlowLog struct {
	threshold time.Duration

	mu    sync.Mutex
	buf   []Entry
	next  int
	total int64
}

// NewSlowLog returns a ring of the given capacity (minimum 1) that
// retains queries at least threshold slow.
func NewSlowLog(size int, threshold time.Duration) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{threshold: threshold, buf: make([]Entry, 0, size)}
}

// Threshold returns the slow-query cutoff.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Add records e, evicting the oldest entry once the ring is full.
func (l *SlowLog) Add(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		l.next = len(l.buf) % cap(l.buf)
		return
	}
	l.buf[l.next] = e
	l.next = (l.next + 1) % len(l.buf)
}

// Snapshot returns the retained entries, newest first, plus the total
// number of slow queries observed (including evicted ones).
func (l *SlowLog) Snapshot() ([]Entry, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.buf))
	for i := 0; i < len(l.buf); i++ {
		// next-1 is the newest; walk backwards.
		j := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		out = append(out, l.buf[j])
	}
	return out, l.total
}
