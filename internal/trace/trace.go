// Package trace explains individual SPINE queries. Whereas
// internal/telemetry aggregates populations (request counts, latency
// histograms), a Trace follows one query through its stages — backbone
// descent, rib and extrib chain walks, occurrence scanning, per-shard
// fan-out, result merging — recording a duration and the SPINE work
// counters (nodes checked, links followed, rib/extrib hops) for each.
// This is the per-query view of the paper's §4.1 accounting: it answers
// "where did THIS query's time go", not just "what does the p99 look
// like".
//
// Traces propagate by context. Query paths call FromContext once per
// query; when no trace is attached (the common case) that is a single
// context lookup and every Trace/Span method is a nil-safe no-op, so
// the hot path pays nothing beyond the lookup. When a trace is
// attached, spans cost one clock read at start and one at finish plus
// a short mutex-guarded append — acceptable for sampled queries and for
// the always-on slow-query forensics built on top (see SlowLog).
package trace

import (
	"context"
	"sync"
	"time"
)

// Stage tags name the query phases instrumented across the codebase.
// Stages carrying NodesChecked partition the query's total node count:
// summing Nodes over a trace's records reproduces the query's reported
// NodesChecked. Ribs/extribs records refine the descent (hop counters
// and time inside chain walks) and carry no Nodes of their own, so the
// partition is preserved.
const (
	// StageDescend is the valid-path walk of the pattern (§3): Nodes is
	// the number of pattern characters consumed, RibHops/ExtribHops the
	// cross-edge work done on the way.
	StageDescend = "descend"
	// StageRibs aggregates time spent in rib lookups during descent.
	StageRibs = "ribs"
	// StageExtribs aggregates time spent walking extrib chains during
	// descent.
	StageExtribs = "extribs"
	// StageOccurrences is the downstream backbone scan (§4): Nodes is
	// the number of backbone nodes scanned, Links the links followed.
	StageOccurrences = "occurrences"
	// StageStream is the matching-statistics streaming pass of the §4
	// complex matching operation; Nodes is the engine's Checked count.
	StageStream = "stream"
	// StageBatchScan is the shared backbone scan of a batch query (§4's
	// set-basis deferral taken literally: one sequential pass resolves
	// every pattern's occurrences). Nodes is the number of backbone nodes
	// scanned once for the whole batch, not per pattern.
	StageBatchScan = "batchscan"
	// StageShard brackets one shard's query during Sharded fan-out; the
	// record's Shard field holds the shard number.
	StageShard = "shard"
	// StageMerge is the Sharded merge: sorting, deduplicating and
	// truncating the per-shard hit lists.
	StageMerge = "merge"
	// StageCache is the result-cache lookup (and insert on miss) of a
	// Cached querier; it carries no Nodes — cache work is not index work.
	StageCache = "cache"
	// StageNegFilter is the q-gram negative-filter probe of a Cached
	// querier: O(|P|) bloom lookups, zero index nodes.
	StageNegFilter = "negfilter"
	// StageDisk aggregates disk-path activity of a mapped index during
	// a query: readahead windows issued ahead of the backbone scan and
	// range-cache hits. It carries zero Nodes — disk work augments a
	// scan stage without disturbing the NodesChecked partition.
	StageDisk = "disk"
)

// AllStages is the canonical list of stage tags. New Stage* constants
// must be added here too — the telemetry exposition, the wide-event
// schema and the stage-exhaustiveness test all iterate this list, and
// the test cross-checks it against the package's constant declarations
// so a stage cannot be added silently.
var AllStages = []string{
	StageDescend,
	StageRibs,
	StageExtribs,
	StageOccurrences,
	StageStream,
	StageBatchScan,
	StageShard,
	StageMerge,
	StageCache,
	StageNegFilter,
	StageDisk,
}

// Counters is the SPINE work done within one span.
type Counters struct {
	// Nodes counts index nodes examined — the §4.1 work metric. Summed
	// over a trace it equals the query's reported NodesChecked.
	Nodes int64 `json:"nodes"`
	// Links counts backbone links followed (occurrence scans, cursor
	// suffix-link hops).
	Links int64 `json:"links"`
	// RibHops counts rib lookups taken during descent.
	RibHops int64 `json:"ribHops"`
	// ExtribHops counts extrib-chain edges walked during descent.
	ExtribHops int64 `json:"extribHops"`
	// BlocksSkipped and BlocksScanned count skip-index decisions during
	// block-accelerated occurrence scans: whole backbone blocks rejected
	// by their block-max summary versus blocks scanned node by node.
	// Skipped blocks contribute no Nodes, which is the point — the
	// Nodes partition invariant above covers only work actually done.
	BlocksSkipped int64 `json:"blocksSkipped"`
	BlocksScanned int64 `json:"blocksScanned"`
	// WordsCompared counts 64-bit SWAR comparisons issued by the
	// word-parallel scan kernel (packed descent words, lane-parallel LEL
	// tests, packed block-admission probes). Zero under the scalar
	// kernel. Unlike Nodes it is kernel-dependent by design: it measures
	// machine ops spent, not index work covered.
	WordsCompared int64 `json:"wordsCompared"`
	// ReadaheadIssued and ReadaheadHits count scan readahead windows
	// issued to the storage layer versus windows already covered by the
	// range cache, when the index serves from disk (StageDisk). Both
	// are zero for memory-resident indexes.
	ReadaheadIssued int64 `json:"readaheadIssued,omitempty"`
	ReadaheadHits   int64 `json:"readaheadHits,omitempty"`
	// WorkersUsed counts backbone partitions spawned by the intra-query
	// parallel scan (zero on the sequential path); ChainsStitched counts
	// cross-partition chain roots the ordered stitch pass resolved.
	// Like WordsCompared these measure machine-level strategy, not index
	// work: Nodes stays parallelism-invariant, these do not.
	WorkersUsed    int64 `json:"workersUsed,omitempty"`
	ChainsStitched int64 `json:"chainsStitched,omitempty"`
}

func (c *Counters) add(o Counters) {
	c.Nodes += o.Nodes
	c.Links += o.Links
	c.RibHops += o.RibHops
	c.ExtribHops += o.ExtribHops
	c.BlocksSkipped += o.BlocksSkipped
	c.BlocksScanned += o.BlocksScanned
	c.WordsCompared += o.WordsCompared
	c.ReadaheadIssued += o.ReadaheadIssued
	c.ReadaheadHits += o.ReadaheadHits
	c.WorkersUsed += o.WorkersUsed
	c.ChainsStitched += o.ChainsStitched
}

// Record is one finished span.
type Record struct {
	// Stage is one of the Stage* tags.
	Stage string `json:"stage"`
	// Shard is the shard number the work belongs to, or -1 when the
	// query did not run under a sharded fan-out.
	Shard int `json:"shard"`
	// Duration is the span's wall time.
	Duration time.Duration `json:"durationNs"`
	Counters
}

// Trace collects the spans of one query. It is safe for concurrent use:
// sharded fan-out records spans from many goroutines. The zero value of
// *Trace (nil) is a valid "tracing off" trace — every method no-ops.
type Trace struct {
	mu   sync.Mutex
	recs []Record

	// Query identity and outcome, set by the serving layer for slow-query
	// forensics.
	endpoint     string
	requestID    string
	source       string
	pattern      Fingerprint
	nodesChecked int64
	nodesSet     bool
	truncated    bool
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{recs: make([]Record, 0, 8)}
}

type ctxKey struct{}

// NewContext returns a context carrying t. Query paths pick it up with
// FromContext; passing a nil t returns ctx unchanged.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil when tracing is
// off for this query.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Span is an in-progress stage measurement. It is a value: callers keep
// it on the stack, fill in C, and call End. A Span from a nil Trace is
// inert.
type Span struct {
	t     *Trace
	stage string
	start time.Time
	// C is the span's work counters, filled by the instrumented code
	// before End.
	C Counters
}

// Start opens a span for stage. On a nil trace it returns an inert span
// without reading the clock.
func (t *Trace) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: time.Now()}
}

// End finishes the span and records it.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.t.Add(s.stage, time.Since(s.start), s.C)
}

// Add records a finished span directly, for callers that measured the
// duration themselves. No-op on a nil trace.
func (t *Trace) Add(stage string, d time.Duration, c Counters) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.recs = append(t.recs, Record{Stage: stage, Shard: -1, Duration: d, Counters: c})
	t.mu.Unlock()
}

// Adopt merges a child trace's records into t, stamping shard on every
// record that is not already shard-attributed. Sharded fan-out gives
// each shard goroutine its own child trace (no lock contention during
// the parallel section) and adopts them after the barrier.
func (t *Trace) Adopt(child *Trace, shard int) {
	if t == nil || child == nil {
		return
	}
	child.mu.Lock()
	recs := child.recs
	child.recs = nil
	child.mu.Unlock()
	t.mu.Lock()
	for _, r := range recs {
		if r.Shard < 0 {
			r.Shard = shard
		}
		t.recs = append(t.recs, r)
	}
	t.mu.Unlock()
}

// Records returns a copy of the spans recorded so far.
func (t *Trace) Records() []Record {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Record(nil), t.recs...)
}

// SetEndpoint labels the trace with the serving endpoint name.
func (t *Trace) SetEndpoint(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.endpoint = name
	t.mu.Unlock()
}

// SetRequestID labels the trace with the request's correlation id so
// slow-log entries join against exported wide events and log lines.
func (t *Trace) SetRequestID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.requestID = id
	t.mu.Unlock()
}

// SetSource records which serving layer answered the query (scan, cache
// or negfilter).
func (t *Trace) SetSource(src string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.source = src
	t.mu.Unlock()
}

// SetPattern fingerprints the query pattern (or /match body) for the
// slow-query log. The pattern itself is not retained.
func (t *Trace) SetPattern(p []byte) {
	if t == nil {
		return
	}
	fp := FingerprintOf(p)
	t.mu.Lock()
	t.pattern = fp
	t.mu.Unlock()
}

// SetNodesChecked records the query's reported NodesChecked total. When
// unset, slow-log entries fall back to the sum over span counters.
func (t *Trace) SetNodesChecked(n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.nodesChecked, t.nodesSet = n, true
	t.mu.Unlock()
}

// SetTruncated records that the query's result was cut at a limit.
func (t *Trace) SetTruncated(v bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.truncated = v
	t.mu.Unlock()
}

// TotalNodes sums Nodes over every recorded span.
func (t *Trace) TotalNodes() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var n int64
	for _, r := range t.recs {
		n += r.Nodes
	}
	return n
}

// StageSummary aggregates a trace's records by (stage, shard) for the
// slow-query log's per-stage breakdown.
type StageSummary struct {
	Stage string `json:"stage"`
	// Shard is -1 for unsharded work.
	Shard      int   `json:"shard"`
	Spans      int64 `json:"spans"`
	DurationUs int64 `json:"durationUs"`
	Counters
}

// Summarize aggregates records by (stage, shard), preserving first-seen
// order.
func Summarize(recs []Record) []StageSummary {
	type key struct {
		stage string
		shard int
	}
	idx := make(map[key]int, len(recs))
	var out []StageSummary
	for _, r := range recs {
		k := key{r.Stage, r.Shard}
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, StageSummary{Stage: r.Stage, Shard: r.Shard})
		}
		out[i].Spans++
		out[i].DurationUs += r.Duration.Microseconds()
		out[i].Counters.add(r.Counters)
	}
	return out
}
