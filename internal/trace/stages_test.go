package trace

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
	"testing"
)

// TestAllStagesIsExhaustive parses this package's source and checks that
// AllStages lists exactly the Stage* string constants — adding a stage
// without registering it here (and so in the Prometheus and wide-event
// vocabularies, which iterate AllStages) fails the build's tests instead
// of silently dropping the tag from dashboards.
func TestAllStagesIsExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "trace.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	declared := map[string]string{} // const name -> stage tag
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Stage") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquoting %s: %v", name.Name, err)
				}
				declared[name.Name] = v
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Stage* constants; parser broke")
	}
	listed := map[string]bool{}
	for _, s := range AllStages {
		if listed[s] {
			t.Errorf("AllStages lists %q twice", s)
		}
		listed[s] = true
	}
	for name, tag := range declared {
		if !listed[tag] {
			t.Errorf("constant %s = %q missing from AllStages", name, tag)
		}
	}
	if len(AllStages) != len(declared) {
		t.Errorf("AllStages has %d entries, source declares %d Stage* constants", len(AllStages), len(declared))
	}
}
