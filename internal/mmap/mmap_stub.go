//go:build !linux || nommap

package mmap

// Supported reports whether Map can succeed in this build.
func Supported() bool { return false }

// Mapping is one read-only mapped file; never constructed in this
// build, the methods exist so callers compile unchanged.
type Mapping struct{}

// Map always fails in this build; callers fall back to io.ReaderAt.
func Map(path string) (*Mapping, error) { return nil, ErrUnsupported }

// Data returns the mapped bytes.
func (m *Mapping) Data() []byte { return nil }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int64 { return 0 }

// Advise applies an access-pattern hint.
func (m *Mapping) Advise(off, length int64, a Advice) error { return ErrUnsupported }

// Prefetch asks the kernel to start paging in a range.
func (m *Mapping) Prefetch(off, length int64) error { return ErrUnsupported }

// Resident returns how many mapped bytes are resident.
func (m *Mapping) Resident() (int64, error) { return 0, ErrUnsupported }

// Close unmaps the file.
func (m *Mapping) Close() error { return nil }
