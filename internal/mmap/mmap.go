// Package mmap provides the thin read-only memory-mapping layer under
// the zero-copy compact-index open. On Linux (without the nommap build
// tag) it wraps mmap/madvise/mincore; everywhere else Map returns
// ErrUnsupported and callers fall back to the io.ReaderAt open path.
//
// The split keeps the portability decision in one place: nothing above
// this package touches syscall, and building with -tags nommap proves
// the fallback path compiles and serves on any platform.
package mmap

import "errors"

// ErrUnsupported reports that memory mapping is unavailable in this
// build (non-Linux target or the nommap build tag).
var ErrUnsupported = errors.New("mmap: not supported on this platform or build")

// Advice names an access-pattern hint for a mapped range, mirroring
// posix madvise.
type Advice int

const (
	// Normal resets the kernel's default readahead behavior.
	Normal Advice = iota
	// Random disables readahead: the range is hit at unpredictable
	// offsets (descent tables).
	Random
	// Sequential aggressively reads ahead: the range is streamed in
	// order (the backbone scan region).
	Sequential
	// WillNeed asks the kernel to start bringing the range in now
	// (warmup, scan readahead windows).
	WillNeed
)
