//go:build linux && !nommap

package mmap

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// Supported reports whether Map can succeed in this build.
func Supported() bool { return true }

// Mapping is one read-only, privately mapped file.
type Mapping struct {
	data []byte
	page int64
}

// Map maps the whole file at path read-only. The file descriptor is
// closed before returning; the mapping keeps the pages alive.
func Map(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	size := st.Size()
	if size <= 0 {
		return nil, fmt.Errorf("mmap: %s: empty file", path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: file size %d overflows address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: mapping %s: %w", path, err)
	}
	return &Mapping{data: data, page: int64(os.Getpagesize())}, nil
}

// Data returns the mapped bytes. The slice is read-only: writing
// through it faults.
func (m *Mapping) Data() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int64 { return int64(len(m.data)) }

// span clamps [off, off+length) to the mapping and widens it to page
// boundaries, as madvise requires a page-aligned start.
func (m *Mapping) span(off, length int64) []byte {
	if m.data == nil || length <= 0 || off >= int64(len(m.data)) {
		return nil
	}
	if off < 0 {
		length += off
		off = 0
	}
	start := off &^ (m.page - 1)
	end := off + length
	if end > int64(len(m.data)) {
		end = int64(len(m.data))
	}
	if end <= start {
		return nil
	}
	return m.data[start:end]
}

// Advise applies an access-pattern hint to the page-aligned widening of
// [off, off+length). Hints are best-effort; errors are returned for
// observability but safe to ignore.
func (m *Mapping) Advise(off, length int64, a Advice) error {
	b := m.span(off, length)
	if b == nil {
		return nil
	}
	var adv int
	switch a {
	case Random:
		adv = syscall.MADV_RANDOM
	case Sequential:
		adv = syscall.MADV_SEQUENTIAL
	case WillNeed:
		adv = syscall.MADV_WILLNEED
	default:
		adv = syscall.MADV_NORMAL
	}
	if err := syscall.Madvise(b, adv); err != nil {
		return fmt.Errorf("mmap: madvise: %w", err)
	}
	return nil
}

// Prefetch asks the kernel to start paging in [off, off+length) now
// (madvise WILLNEED): the asynchronous readahead primitive under the
// backbone-scan streaming path.
func (m *Mapping) Prefetch(off, length int64) error {
	return m.Advise(off, length, WillNeed)
}

// Resident returns how many mapped bytes are currently resident in the
// page cache (mincore), rounded to whole pages.
func (m *Mapping) Resident() (int64, error) {
	if len(m.data) == 0 {
		return 0, nil
	}
	pages := (int64(len(m.data)) + m.page - 1) / m.page
	vec := make([]byte, pages)
	// The stdlib syscall package has no Mincore wrapper; invoke the raw
	// syscall. The vec slice outlives the call, so no liveness concerns.
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&m.data[0])), uintptr(len(m.data)), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, fmt.Errorf("mmap: mincore: %w", errno)
	}
	var resident int64
	for _, v := range vec {
		if v&1 != 0 {
			resident++
		}
	}
	return resident * m.page, nil
}

// Close unmaps the file. The mapping's bytes must not be touched after
// Close returns.
func (m *Mapping) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	if err := syscall.Munmap(data); err != nil {
		return fmt.Errorf("mmap: munmap: %w", err)
	}
	return nil
}
