// Package trie implements the uncompacted suffix trie that both the suffix
// tree (vertical compaction) and SPINE (horizontal compaction) start from
// (Figure 1 of the paper), plus a brute-force substring oracle.
//
// The trie is deliberately simple and memory-hungry: its role is to
// motivate compaction (node counts grow quadratically in the worst case)
// and to serve as ground truth for property tests of the compacted indexes.
package trie

import "sort"

// Node is one suffix-trie node. Children are keyed by character.
type Node struct {
	Children map[byte]*Node
	// Terminal reports that at least one suffix of the data string ends
	// exactly here.
	Terminal bool
}

// Trie is a suffix trie over a single data string.
type Trie struct {
	Root *Node
	n    int // string length
}

// Build constructs the suffix trie holding every suffix of s.
func Build(s []byte) *Trie {
	t := &Trie{Root: &Node{}, n: len(s)}
	for i := range s {
		t.insert(s[i:])
	}
	t.insert(nil) // empty suffix: root is terminal
	return t
}

func (t *Trie) insert(suffix []byte) {
	v := t.Root
	for _, c := range suffix {
		if v.Children == nil {
			v.Children = make(map[byte]*Node)
		}
		next := v.Children[c]
		if next == nil {
			next = &Node{}
			v.Children[c] = next
		}
		v = next
	}
	v.Terminal = true
}

// Contains reports whether p labels a root-originated path, i.e. whether p
// is a substring of the data string.
func (t *Trie) Contains(p []byte) bool {
	v := t.Root
	for _, c := range p {
		v = v.Children[c]
		if v == nil {
			return false
		}
	}
	return true
}

// NodeCount returns the number of trie nodes including the root. For a
// repetitive string this is far larger than SPINE's n+1 nodes and the
// suffix tree's <= 2n nodes, which is the paper's motivation for
// compaction.
func (t *Trie) NodeCount() int {
	count := 0
	var walk func(*Node)
	walk = func(v *Node) {
		count++
		for _, ch := range v.Children {
			walk(ch)
		}
	}
	walk(t.Root)
	return count
}

// EdgeCount returns the number of trie edges.
func (t *Trie) EdgeCount() int { return t.NodeCount() - 1 }

// Len returns the data string length.
func (t *Trie) Len() int { return t.n }

// Substrings enumerates every distinct substring of the data string up to
// maxLen characters (maxLen <= 0 means unbounded), in sorted order. It is
// exponential in the worst case and intended only for small test inputs.
func (t *Trie) Substrings(maxLen int) []string {
	var out []string
	var walk func(v *Node, prefix []byte)
	walk = func(v *Node, prefix []byte) {
		out = append(out, string(prefix))
		if maxLen > 0 && len(prefix) >= maxLen {
			return
		}
		for c, ch := range v.Children {
			walk(ch, append(prefix, c))
		}
	}
	walk(t.Root, nil)
	sort.Strings(out)
	return out
}

// Oracle answers substring queries about s by brute force; it is the
// reference implementation every index is property-tested against.
type Oracle struct{ s []byte }

// NewOracle wraps s. The oracle aliases s; callers must not mutate it.
func NewOracle(s []byte) *Oracle { return &Oracle{s: s} }

// Contains reports whether p occurs in s.
func (o *Oracle) Contains(p []byte) bool { return len(o.Occurrences(p)) > 0 }

// First returns the start offset of the first occurrence of p in s, or -1.
// The empty pattern occurs at offset 0.
func (o *Oracle) First(p []byte) int {
	occ := o.Occurrences(p)
	if len(occ) == 0 {
		return -1
	}
	return occ[0]
}

// Occurrences returns every start offset of p in s (including overlapping
// occurrences), in increasing order. The empty pattern occurs at every
// offset 0..len(s).
func (o *Oracle) Occurrences(p []byte) []int {
	occ := []int{}
	for i := 0; i+len(p) <= len(o.s); i++ {
		if string(o.s[i:i+len(p)]) == string(p) {
			occ = append(occ, i)
		}
	}
	return occ
}

// SubstringSet returns every distinct substring of s with length in
// [1, maxLen] (maxLen <= 0 means unbounded). Intended for small inputs.
func (o *Oracle) SubstringSet(maxLen int) map[string]bool {
	set := make(map[string]bool)
	for i := range o.s {
		for j := i + 1; j <= len(o.s); j++ {
			if maxLen > 0 && j-i > maxLen {
				break
			}
			set[string(o.s[i:j])] = true
		}
	}
	return set
}
