package trie

import (
	"fmt"
	"io"
	"sort"
)

// WriteDot renders the suffix trie as a Graphviz digraph — the paper's
// Figure 1 for its example string.
func (t *Trie) WriteDot(w io.Writer) error {
	var err error
	printf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	printf("digraph trie {\n")
	printf("  node [shape=point];\n")
	printf("  edge [fontsize=10];\n")
	id := 0
	var walk func(v *Node) int
	walk = func(v *Node) int {
		my := id
		id++
		printf("  n%d;\n", my)
		chars := make([]byte, 0, len(v.Children))
		for c := range v.Children {
			chars = append(chars, c)
		}
		sort.Slice(chars, func(i, j int) bool { return chars[i] < chars[j] })
		for _, c := range chars {
			child := walk(v.Children[c])
			printf("  n%d -> n%d [label=\"%c\"];\n", my, child, c)
		}
		return my
	}
	walk(t.Root)
	printf("}\n")
	return err
}
