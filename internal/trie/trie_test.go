package trie

import (
	"math/rand"
	"testing"
)

func TestPaperExampleTrie(t *testing.T) {
	// Figure 1 of the paper builds the trie for "aaccacaaca".
	tr := Build([]byte("aaccacaaca"))
	for _, p := range []string{"", "a", "aacc", "cacaaca", "aaccacaaca"} {
		if !tr.Contains([]byte(p)) {
			t.Errorf("Contains(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"b", "accaa", "caca c", "aaccacaacaa"} {
		if tr.Contains([]byte(p)) {
			t.Errorf("Contains(%q) = true, want false", p)
		}
	}
}

func TestTrieEmptyString(t *testing.T) {
	tr := Build(nil)
	if !tr.Contains(nil) {
		t.Error("empty pattern should be contained in empty string")
	}
	if tr.Contains([]byte("a")) {
		t.Error("nonempty pattern contained in empty string")
	}
	if tr.NodeCount() != 1 {
		t.Errorf("NodeCount = %d, want 1", tr.NodeCount())
	}
}

func TestNodeCountDistinctSubstrings(t *testing.T) {
	// Trie node count = number of distinct substrings + 1 (root/empty).
	s := []byte("aaccacaaca")
	tr := Build(s)
	distinct := len(NewOracle(s).SubstringSet(0))
	if got := tr.NodeCount(); got != distinct+1 {
		t.Errorf("NodeCount = %d, want %d", got, distinct+1)
	}
	if got := tr.EdgeCount(); got != distinct {
		t.Errorf("EdgeCount = %d, want %d", got, distinct)
	}
}

func TestSubstringsEnumeration(t *testing.T) {
	tr := Build([]byte("aab"))
	got := tr.Substrings(0)
	want := []string{"", "a", "aa", "aab", "ab", "b"}
	if len(got) != len(want) {
		t.Fatalf("Substrings = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Substrings = %v, want %v", got, want)
		}
	}
	if capped := tr.Substrings(1); len(capped) != 3 { // "", "a", "b"
		t.Fatalf("Substrings(maxLen=1) = %v", capped)
	}
}

func TestTrieMatchesOracleOnRandomStrings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	letters := []byte("acgt")
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		s := make([]byte, n)
		for i := range s {
			s[i] = letters[rng.Intn(len(letters))]
		}
		tr := Build(s)
		o := NewOracle(s)
		for q := 0; q < 30; q++ {
			m := rng.Intn(6)
			p := make([]byte, m)
			for i := range p {
				p[i] = letters[rng.Intn(len(letters))]
			}
			if tr.Contains(p) != o.Contains(p) {
				t.Fatalf("s=%q p=%q: trie=%v oracle=%v", s, p, tr.Contains(p), o.Contains(p))
			}
		}
	}
}

func TestOracleOccurrences(t *testing.T) {
	o := NewOracle([]byte("aaccacaaca"))
	cases := []struct {
		p    string
		want []int
	}{
		{"a", []int{0, 1, 4, 6, 7, 9}},
		{"ac", []int{1, 4, 7}},
		{"aacc", []int{0}},
		{"ca", []int{3, 5, 8}},
		{"zz", []int{}},
		{"aaccacaaca", []int{0}},
	}
	for _, c := range cases {
		got := o.Occurrences([]byte(c.p))
		if len(got) != len(c.want) {
			t.Errorf("Occurrences(%q) = %v, want %v", c.p, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Occurrences(%q) = %v, want %v", c.p, got, c.want)
				break
			}
		}
	}
	if got := o.First([]byte("ca")); got != 3 {
		t.Errorf("First(ca) = %d, want 3", got)
	}
	if got := o.First([]byte("zz")); got != -1 {
		t.Errorf("First(zz) = %d, want -1", got)
	}
}

func TestOracleOverlappingOccurrences(t *testing.T) {
	o := NewOracle([]byte("aaaa"))
	got := o.Occurrences([]byte("aa"))
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("Occurrences(aa in aaaa) = %v, want [0 1 2]", got)
	}
}

func TestOracleEmptyPattern(t *testing.T) {
	o := NewOracle([]byte("ab"))
	if got := o.Occurrences(nil); len(got) != 3 {
		t.Fatalf("empty pattern occurrences = %v, want offsets 0..2", got)
	}
}
