package spine

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md §2). Each benchmark regenerates its artifact through the
// internal/bench harness and prints the table once; `go test -bench=.`
// runs everything at a reduced scale (sequence lengths divided by
// benchDivide), `cmd/spinebench -divide 1` runs paper scale.
//
// Plus micro-benchmarks of the core operations (construction, search,
// matching) with allocation figures, and ablation benches for the design
// choices DESIGN.md calls out.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"github.com/spine-index/spine/internal/bench"
	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/pager"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
	"github.com/spine-index/spine/internal/suffixarray"
	"github.com/spine-index/spine/internal/suffixtree"
)

// benchDivide scales the paper's sequence lengths down so the full bench
// suite completes on a laptop (eco: 3.5M -> ~35k, hc19: 57.5M -> ~575k).
const benchDivide = 100

// diskDivide scales further for the disk experiments, which pay per-page
// I/O costs.
const diskDivide = 500

var (
	corpusOnce sync.Once
	corpus     *bench.Corpus
	diskCorpus *bench.Corpus
	printed    sync.Map
)

func getCorpus() *bench.Corpus {
	corpusOnce.Do(func() {
		corpus = bench.NewCorpus(benchDivide)
		diskCorpus = bench.NewCorpus(diskDivide)
	})
	return corpus
}

// printOnce emits a regenerated table a single time per process so bench
// output contains each artifact exactly once.
func printOnce(t bench.Table) {
	if _, loaded := printed.LoadOrStore(t.ID, true); !loaded {
		t.Fprint(os.Stdout)
	}
}

func BenchmarkTable2NodeContent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench.Table2NodeContent()
		printOnce(t)
	}
}

func BenchmarkTable3LabelValues(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Table3LabelValues(c, seqgen.SuiteNames)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkTable4RibDistribution(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Table4RibDistribution(c, seqgen.SuiteNames)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkFig6ConstructInMemory(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig6ConstructInMemory(c, seqgen.SuiteNames)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkTable5MatchInMemory(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Table5MatchInMemory(c, bench.Table5Pairs)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkTable6NodesChecked(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Table6NodesChecked(c, bench.Table6Pairs)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkFig7ConstructOnDisk(b *testing.B) {
	getCorpus()
	cfg := bench.DiskConfig{Policy: pager.TopRetention}
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig7ConstructOnDisk(diskCorpus, []string{"eco", "cel", "hc21"}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkFig8LinkDistribution(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig8LinkDistribution(c, []string{"eco", "cel", "hc21"}, 6)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkTable7MatchOnDisk(b *testing.B) {
	getCorpus()
	cfg := bench.DiskConfig{Policy: pager.TopRetention}
	for i := 0; i < b.N; i++ {
		t, err := bench.Table7MatchOnDisk(diskCorpus, bench.Table7Pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkBytesPerChar(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.BytesPerChar(c, seqgen.SuiteNames)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

func BenchmarkProteinSuite(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.ProteinSuite(c, seqgen.ProteinSuiteNames)
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

// --- Micro-benchmarks: core operation costs with allocations ---

func benchSequence(b *testing.B, name string) []byte {
	b.Helper()
	return getCorpus().MustGet(name)
}

func BenchmarkMicroSpineConstruct(b *testing.B) {
	s := benchSequence(b, "eco")
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Build(s)
	}
}

func BenchmarkMicroSuffixTreeConstruct(b *testing.B) {
	s := benchSequence(b, "eco")
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := suffixtree.Build(s, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroSuffixArrayConstruct(b *testing.B) {
	s := benchSequence(b, "eco")
	b.SetBytes(int64(len(s)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suffixarray.Build(s)
	}
}

func BenchmarkMicroSpineSearch(b *testing.B) {
	s := benchSequence(b, "eco")
	idx := core.Build(s)
	patterns := searchPatterns(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if idx.Find(p) < 0 {
			b.Fatal("pattern sampled from text not found")
		}
	}
}

func BenchmarkMicroCompactSearch(b *testing.B) {
	s := benchSequence(b, "eco")
	comp, err := core.Freeze(core.Build(s), seq.DNA)
	if err != nil {
		b.Fatal(err)
	}
	patterns := searchPatterns(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if comp.Find(p) < 0 {
			b.Fatal("pattern sampled from text not found")
		}
	}
}

func BenchmarkMicroSuffixTreeSearch(b *testing.B) {
	s := benchSequence(b, "eco")
	st, err := suffixtree.Build(s, 0)
	if err != nil {
		b.Fatal(err)
	}
	patterns := searchPatterns(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if !st.Contains(p) {
			b.Fatal("pattern sampled from text not found")
		}
	}
}

func BenchmarkMicroSuffixArraySearch(b *testing.B) {
	s := benchSequence(b, "eco")
	sa := suffixarray.Build(s)
	patterns := searchPatterns(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := patterns[i%len(patterns)]
		if !sa.Contains(p) {
			b.Fatal("pattern sampled from text not found")
		}
	}
}

func searchPatterns(s []byte) [][]byte {
	var out [][]byte
	for off := 0; off+32 <= len(s) && len(out) < 256; off += len(s) / 256 {
		out = append(out, s[off:off+32])
	}
	return out
}

// --- Ablations ---

// BenchmarkAblationBatchScan compares per-match occurrence scans against
// the paper's single deferred backbone scan (§4).
func BenchmarkAblationBatchScan(b *testing.B) {
	s := benchSequence(b, "cel")
	idx := core.Build(s)
	// Collect match anchors once: maximal matches of a mutated fragment.
	query := append([]byte{}, s[:len(s)/4]...)
	for i := 0; i < len(query); i += 97 {
		query[i] = 'a'
	}
	e := match.NewSpineEngine(idx)
	rep, err := match.MaximalMatches(e, s, query, 16)
	if err != nil {
		b.Fatal(err)
	}
	var firsts, lens []int32
	for _, m := range rep.Matches {
		firsts = append(firsts, int32(m.DataStarts[0]+m.Len))
		lens = append(lens, int32(m.Len))
	}
	if len(firsts) == 0 {
		b.Fatal("no matches to scan")
	}
	b.Run("batched-single-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.ScanMany(firsts, lens)
		}
	})
	b.Run("per-match-scans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for j := range firsts {
				idx.ScanMany(firsts[j:j+1], lens[j:j+1])
			}
		}
	})
}

// BenchmarkAblationCompactVsReference measures the query-time cost of the
// compact layout's indirection against the pointer-rich reference layout.
func BenchmarkAblationCompactVsReference(b *testing.B) {
	s := benchSequence(b, "eco")
	idx := core.Build(s)
	comp, err := core.Freeze(idx, seq.DNA)
	if err != nil {
		b.Fatal(err)
	}
	patterns := searchPatterns(s)
	b.Run("reference", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.FindAll(patterns[i%len(patterns)])
		}
	})
	b.Run("compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp.FindAll(patterns[i%len(patterns)])
		}
	})
}

// BenchmarkFilterComparison runs E13: the §7 complete-vs-filter contrast
// (SPINE against an MRS-style q-gram block filter).
func BenchmarkFilterComparison(b *testing.B) {
	c := getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.FilterComparison(c, "eco")
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

// BenchmarkAblationBufferPolicy quantifies the Figure 8 insight: the
// top-retention policy against plain LRU for disk-SPINE matching.
func BenchmarkAblationBufferPolicy(b *testing.B) {
	getCorpus()
	for i := 0; i < b.N; i++ {
		t, err := bench.BufferPolicyAblation(diskCorpus, "eco")
		if err != nil {
			b.Fatal(err)
		}
		printOnce(t)
	}
}

// BenchmarkAblationDirectCompactBuild measures the paper's §5 note that
// building straight into the table layout (rows moving between RTs as
// fan-out grows) costs little over building the pointer layout and
// freezing once.
func BenchmarkAblationDirectCompactBuild(b *testing.B) {
	s := benchSequence(b, "eco")
	b.Run("build-then-freeze", func(b *testing.B) {
		b.SetBytes(int64(len(s)))
		for i := 0; i < b.N; i++ {
			if _, err := core.Freeze(core.Build(s), seq.DNA); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-compact", func(b *testing.B) {
		b.SetBytes(int64(len(s)))
		for i := 0; i < b.N; i++ {
			cb, err := core.NewCompactBuilder(seq.DNA)
			if err != nil {
				b.Fatal(err)
			}
			for _, ch := range s {
				if err := cb.Append(ch); err != nil {
					b.Fatal(err)
				}
			}
			cb.Finish()
		}
	})
}

// BenchmarkAblationOnlinePrefix measures the marginal cost of online
// appends (prefix partitioning means there is no rebuild).
func BenchmarkAblationOnlinePrefix(b *testing.B) {
	s := benchSequence(b, "eco")
	b.SetBytes(int64(len(s)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := core.New()
		for _, c := range s {
			idx.Append(c)
		}
	}
}

// BenchmarkShardedBuild measures the parallel-build speedup sharding buys
// over SPINE's inherently sequential single-index construction.
func BenchmarkShardedBuild(b *testing.B) {
	s := benchSequence(b, "cel")
	b.Run("single", func(b *testing.B) {
		b.SetBytes(int64(len(s)))
		for i := 0; i < b.N; i++ {
			Build(s)
		}
	})
	b.Run("sharded-8", func(b *testing.B) {
		b.SetBytes(int64(len(s)))
		for i := 0; i < b.N; i++ {
			if _, err := BuildSharded(s, (len(s)+7)/8, 64, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMicroApproxSearch measures k-mismatch search cost growth with
// the error budget.
func BenchmarkMicroApproxSearch(b *testing.B) {
	s := benchSequence(b, "eco")
	idx := core.Build(s)
	patterns := searchPatterns(s)
	for _, k := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				idx.FindAllWithin(patterns[i%len(patterns)], k, core.Hamming)
			}
		})
	}
}

// BenchmarkMicroLongestRepeatedSubstring measures the LEL-scan LRS against
// the classical suffix-array route.
func BenchmarkMicroLongestRepeatedSubstring(b *testing.B) {
	s := benchSequence(b, "eco")
	idx := core.Build(s)
	sa := suffixarray.Build(s)
	b.Run("spine-lel-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.LongestRepeatedSubstring()
		}
	})
	b.Run("suffix-array-lcp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sa.LongestRepeatedSubstring()
		}
	})
}
