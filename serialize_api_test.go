package spine

import (
	"bytes"
	"testing"
)

func TestCompactSaveLoadAPI(t *testing.T) {
	idx := Build([]byte("acgtacgtaaccgg"))
	c, err := idx.Compact(DNA)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	back, err := LoadCompact(&buf)
	if err != nil {
		t.Fatalf("LoadCompact: %v", err)
	}
	if back.Len() != c.Len() {
		t.Fatal("lengths differ after round trip")
	}
	for _, p := range []string{"acgt", "cgg", "taa", "xyz"} {
		if got, want := back.FindAll([]byte(p)), c.FindAll([]byte(p)); len(got) != len(want) {
			t.Fatalf("FindAll(%q) differs after round trip: %v vs %v", p, got, want)
		}
	}
}

func TestLoadCompactRejectsGarbage(t *testing.T) {
	if _, err := LoadCompact(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
