package spine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"

	"github.com/spine-index/spine/internal/core"
)

// BatchOptions tunes a QueryBatch call.
type BatchOptions struct {
	// Limit caps every item's occurrence count (<= 0 means unlimited),
	// like FindAllLimitContext's limit.
	Limit int
	// Limits, when non-nil, overrides Limit per item; its length must
	// equal the batch's pattern count.
	Limits []int
	// Workers bounds the valid-path descent pool. <= 0 picks a default:
	// GOMAXPROCS on an Index or Compact, 1 inside each shard of a
	// Sharded index (the shard fan-out is already parallel).
	Workers int
}

// itemLimits resolves the per-item occurrence caps for n patterns.
func (o BatchOptions) itemLimits(n int) ([]int, error) {
	if o.Limits == nil {
		limits := make([]int, n)
		for i := range limits {
			limits[i] = o.Limit
		}
		return limits, nil
	}
	if len(o.Limits) != n {
		return nil, fmt.Errorf("%w: Limits length %d != %d patterns", ErrBadBatch, len(o.Limits), n)
	}
	return o.Limits, nil
}

// batchDedupe maps each pattern to its canonical twin under (pattern
// bytes, effective limit) identity. dupOf[i] is the index of the first
// identical item (i itself when unique); uniq lists the canonical
// indices in first-appearance order. Duplicates later share the
// canonical item's result, including its Positions slice.
func batchDedupe(patterns [][]byte, limits []int) (dupOf, uniq []int) {
	type key struct {
		pat   string
		limit int
	}
	canon := make(map[key]int, len(patterns))
	dupOf = make([]int, len(patterns))
	for i, p := range patterns {
		k := key{string(p), limits[i]}
		if j, ok := canon[k]; ok {
			dupOf[i] = j
			continue
		}
		canon[k] = i
		dupOf[i] = i
		uniq = append(uniq, i)
	}
	return dupOf, uniq
}

// emptyPatternResult answers the empty pattern, which occurs at every
// offset 0..n, under the single-query limit semantics.
func emptyPatternResult(n, limit int) QueryResult {
	count := n + 1
	var res QueryResult
	if limit > 0 && count > limit {
		count = limit
		res.Truncated = true
	}
	res.Positions = make([]int, count)
	for i := range res.Positions {
		res.Positions[i] = i
	}
	return res
}

// coreBatcher is the slice of the core engine QueryBatch needs: a
// per-pattern descent and the shared limit-aware backbone scan. Both
// core layouts satisfy it.
type coreBatcher interface {
	EndNodeCtx(ctx context.Context, p []byte) (int32, bool)
	ScanManyLimitCtx(ctx context.Context, firsts, lens []int32, limits []int) (core.BatchScan, error)
}

// QueryBatch implements Querier: N patterns, one backbone scan.
func (x *Index) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	return queryBatchOn(ctx, x.c, x.Len(), patterns, opts)
}

// QueryBatch implements Querier; see Index.QueryBatch. Patterns with
// letters outside the alphabet simply do not occur.
func (x *Compact) QueryBatch(ctx context.Context, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	return queryBatchOn(ctx, x.c, x.Len(), patterns, opts)
}

// queryBatchOn is the single-index batch engine: dedupe, pooled
// descents, then ONE ScanManyLimitCtx backbone pass resolving every
// found pattern's occurrence set (§4's deferred set-basis scan). Each
// item's NodesChecked is its descent cost plus an amortized share of
// the shared scan, so the per-item counts sum to the batch's true total
// work — what serving telemetry aggregates.
func queryBatchOn(ctx context.Context, c coreBatcher, n int, patterns [][]byte, opts BatchOptions) ([]QueryResult, error) {
	limits, err := opts.itemLimits(len(patterns))
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]QueryResult, len(patterns))
	dupOf, uniq := batchDedupe(patterns, limits)
	// Empty patterns occur everywhere and take no part in the scan.
	work := uniq[:0:0]
	for _, i := range uniq {
		if len(patterns[i]) == 0 {
			results[i] = emptyPatternResult(n, limits[i])
			continue
		}
		work = append(work, i)
	}
	// Valid-path descents through a bounded worker pool. Descents are
	// short (O(len p)) and independent; the pool keeps huge batches from
	// spawning a goroutine per pattern.
	firsts := make([]int32, len(work))
	found := make([]bool, len(work))
	descend := func(k int) {
		i := work[k]
		firsts[k], found[k] = c.EndNodeCtx(ctx, patterns[i])
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(work) {
		workers = len(work)
	}
	if workers > 1 {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Label the pool so CPU profiles attribute batch descent
				// time per worker, like the partitioned-scan labels.
				pprof.Do(ctx, pprof.Labels("spine_batch", "descend", "spine_batch_worker", strconv.Itoa(w)), func(context.Context) {
					for k := range jobs {
						descend(k)
					}
				})
			}(w)
		}
		for k := range work {
			jobs <- k
		}
		close(jobs)
		wg.Wait()
	} else {
		for k := range work {
			descend(k)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Gather the patterns that occur and resolve all their occurrence
	// sets in one backbone pass.
	var (
		scanFirsts []int32
		scanLens   []int32
		scanLimits []int
		parts      []int
	)
	for k, i := range work {
		results[i].NodesChecked = int64(len(patterns[i]))
		if !found[k] {
			continue
		}
		parts = append(parts, i)
		scanFirsts = append(scanFirsts, firsts[k])
		scanLens = append(scanLens, int32(len(patterns[i])))
		scanLimits = append(scanLimits, limits[i])
	}
	if len(parts) > 0 {
		scan, err := c.ScanManyLimitCtx(ctx, scanFirsts, scanLens, scanLimits)
		if err != nil {
			return nil, err
		}
		share := scan.Scanned / int64(len(parts))
		rem := scan.Scanned % int64(len(parts))
		for k, i := range parts {
			plen := len(patterns[i])
			pos := make([]int, len(scan.Ends[k]))
			for e, end := range scan.Ends[k] {
				pos[e] = int(end) - plen
			}
			results[i].Positions = pos
			results[i].Truncated = scan.Truncated[k]
			results[i].NodesChecked += share
			if int64(k) < rem {
				results[i].NodesChecked++
			}
		}
	}
	for _, i := range uniq {
		results[i].normalize()
	}
	for i := range patterns {
		if dupOf[i] != i {
			results[i] = results[dupOf[i]]
		}
	}
	return results, nil
}
