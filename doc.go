// Package spine implements the SPINE string index — "String Processing
// INdexing Engine" — a horizontally compacted suffix trie (Neelapala,
// Mittal & Haritsa, ICDE 2004).
//
// SPINE collapses the suffix trie of a string onto a linear backbone with
// exactly one node per character. Forward edges (vertebras, ribs, extribs)
// carry every suffix of the string; integer edge labels gate traversal so
// that the index's valid paths are exactly the string's substrings.
// Compared with suffix trees, SPINE needs about a third less space, is
// prefix-partitionable, never stores the text separately, and processes
// suffixes on a set basis during matching.
//
// # Quick start
//
//	idx := spine.Build([]byte("aaccacaaca"))
//	idx.Contains([]byte("cacaa"))   // true
//	idx.Find([]byte("ac"))          // 1 (first occurrence)
//	idx.FindAll([]byte("ac"))       // [1 4 7]
//
// Construction is online: an Index extended with Append is always complete
// for the characters seen so far, and the index of a prefix is the prefix
// of the index.
//
// For long-lived, memory-tight deployments, freeze an Index into the
// compact table layout (< 12 bytes per DNA character):
//
//	c, err := idx.Compact(spine.DNA)
//
// For genome-scale comparisons, MaximalMatches streams a query against the
// index and reports all maximal matching substrings above a threshold —
// the core of MUMmer-style alignment; Align chains reference-unique
// matches into a global alignment skeleton.
//
// Disk-resident indexes (package-level OpenDisk/CreateDisk) run the same
// structure through a paged buffer manager with the paper's top-retention
// buffering policy.
package spine
