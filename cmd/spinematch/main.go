// Command spinematch finds all maximal matching substrings between two
// sequences — the paper's §4 complex matching operation — on a selectable
// engine (SPINE or suffix tree), reporting times and nodes checked.
//
// Usage:
//
//	spinematch -data a.fa -query b.fa -minlen 20
//	spinematch -data-synthetic cel -query-synthetic eco -divide 100 -engine st
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
	"github.com/spine-index/spine/internal/suffixtree"
)

func main() {
	var (
		dataFasta  = flag.String("data", "", "data (reference) FASTA file")
		queryFasta = flag.String("query", "", "query FASTA file")
		dataSyn    = flag.String("data-synthetic", "", "synthetic data sequence name")
		querySyn   = flag.String("query-synthetic", "", "synthetic query sequence name")
		divide     = flag.Int("divide", 1, "scale divisor for synthetic sequences")
		minLen     = flag.Int("minlen", 20, "minimum match length")
		engine     = flag.String("engine", "spine", "matching engine: spine or st")
		limit      = flag.Int("limit", 20, "max matches to print")
	)
	flag.Parse()
	if err := run(*dataFasta, *queryFasta, *dataSyn, *querySyn, *divide, *minLen, *engine, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "spinematch:", err)
		os.Exit(1)
	}
}

func load(fasta, synthetic string, divide int) ([]byte, error) {
	switch {
	case fasta != "":
		f, err := os.Open(fasta)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := seq.ReadFASTA(f)
		if err != nil {
			return nil, err
		}
		return seq.DNA.Sanitize(recs[0].Seq), nil
	case synthetic != "":
		return seqgen.SuiteSequence(synthetic, divide)
	}
	return nil, fmt.Errorf("a FASTA path or synthetic name is required for both sequences")
}

func run(dataFasta, queryFasta, dataSyn, querySyn string, divide, minLen int, engine string, limit int) error {
	data, err := load(dataFasta, dataSyn, divide)
	if err != nil {
		return fmt.Errorf("data: %w", err)
	}
	query, err := load(queryFasta, querySyn, divide)
	if err != nil {
		return fmt.Errorf("query: %w", err)
	}

	var eng match.Engine
	switch engine {
	case "spine":
		eng = match.NewSpineEngine(core.Build(data))
	case "st":
		st, err := suffixtree.Build(data, 0)
		if err != nil {
			return err
		}
		eng = match.NewTreeEngine(st)
	default:
		return fmt.Errorf("unknown engine %q (want spine or st)", engine)
	}

	rep, err := match.MaximalMatches(eng, data, query, minLen)
	if err != nil {
		return err
	}
	fmt.Printf("engine=%s data=%d chars query=%d chars minlen=%d\n", engine, len(data), len(query), minLen)
	fmt.Printf("matches: %d (pairs: %d)   elapsed: %v   nodes checked: %d\n",
		len(rep.Matches), rep.Pairs, rep.Elapsed, rep.NodesChecked)
	for i, m := range rep.Matches {
		if i >= limit {
			fmt.Printf("... %d more\n", len(rep.Matches)-limit)
			break
		}
		preview := query[m.QueryStart : m.QueryStart+min(m.Len, 40)]
		fmt.Printf("  q[%d:%d] len %d at data %v  %q\n",
			m.QueryStart, m.QueryStart+m.Len, m.Len, m.DataStarts, preview)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
