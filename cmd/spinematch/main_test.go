package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFASTA(t *testing.T, name, seq string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(">"+name+"\n"+seq+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSpineEngine(t *testing.T) {
	a := writeFASTA(t, "a.fa", "acaccgacgatacgagattacgagacgagaatacaacag")
	b := writeFASTA(t, "b.fa", "catagagagacgattacgagaaaacgggaaagacgatcc")
	if err := run(a, b, "", "", 1, 6, "spine", 10); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunTreeEngine(t *testing.T) {
	a := writeFASTA(t, "a.fa", "acaccgacgatacgagattacgagacgagaatacaacag")
	b := writeFASTA(t, "b.fa", "catagagagacgattacgagaaaacgggaaagacgatcc")
	if err := run(a, b, "", "", 1, 6, "st", 10); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSynthetic(t *testing.T) {
	if err := run("", "", "eco", "cel", 2000, 10, "spine", 5); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	a := writeFASTA(t, "a.fa", "acgt")
	b := writeFASTA(t, "b.fa", "acgt")
	if err := run(a, b, "", "", 1, 3, "warp", 5); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunRejectsMissingSequences(t *testing.T) {
	if err := run("", "", "", "", 1, 3, "spine", 5); err == nil {
		t.Fatal("missing sequences accepted")
	}
}
