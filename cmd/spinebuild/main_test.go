package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFASTA(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fa")
	data := ">test genome\nacgtacgtacca\ncaacgtgg\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithFASTA(t *testing.T) {
	if err := run(writeFASTA(t), "", 1, false, 4, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithSynthetic(t *testing.T) {
	if err := run("", "eco", 1000, false, 4, true); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithProteinSynthetic(t *testing.T) {
	if err := run("", "ecoli-res", 1000, false, 4, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsNoInput(t *testing.T) {
	if err := run("", "", 1, false, 4, false); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestRunRejectsUnknownSynthetic(t *testing.T) {
	if err := run("", "nope", 1, false, 4, false); err == nil {
		t.Fatal("unknown synthetic accepted")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	if err := run("/nonexistent/genome.fa", "", 1, false, 4, false); err == nil {
		t.Fatal("missing file accepted")
	}
}
