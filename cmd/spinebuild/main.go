// Command spinebuild constructs a SPINE index over a FASTA file or a
// synthetic suite sequence and reports its structural statistics: the
// per-genome measurements of Tables 3 and 4, the Figure 8 link
// distribution, and the compact layout's bytes-per-character figure.
//
// Usage:
//
//	spinebuild -fasta genome.fa
//	spinebuild -synthetic eco -divide 10
//	spinebuild -synthetic ecoli-res -divide 10 -protein
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
)

func main() {
	var (
		fasta     = flag.String("fasta", "", "FASTA file to index (first record)")
		synthetic = flag.String("synthetic", "", "synthetic suite sequence: eco, cel, hc21, hc19, ecoli-res, yeast-res, dros-res")
		divide    = flag.Int("divide", 1, "scale divisor for synthetic sequences")
		protein   = flag.Bool("protein", false, "treat input as protein residues (default DNA)")
		buckets   = flag.Int("linkbuckets", 6, "segments for the link-destination histogram")
		verify    = flag.Bool("verify", false, "run the full structural integrity check after building")
	)
	flag.Parse()
	if err := run(*fasta, *synthetic, *divide, *protein, *buckets, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "spinebuild:", err)
		os.Exit(1)
	}
}

func run(fasta, synthetic string, divide int, protein bool, buckets int, verify bool) error {
	alpha := seq.DNA
	if protein {
		alpha = seq.Protein
	}
	var data []byte
	var name string
	switch {
	case fasta != "":
		f, err := os.Open(fasta)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err := seq.ReadFASTA(f)
		if err != nil {
			return err
		}
		name = recs[0].Header
		data = alpha.Sanitize(recs[0].Seq)
	case synthetic != "":
		s, err := seqgen.SuiteSequence(synthetic, divide)
		if err != nil {
			return err
		}
		name = synthetic
		data = s
		if alphaOf(synthetic) == seq.Protein {
			alpha = seq.Protein
		}
	default:
		return fmt.Errorf("one of -fasta or -synthetic is required")
	}

	start := time.Now()
	idx := core.Build(data)
	buildDur := time.Since(start)
	st := idx.ComputeStats()
	comp, err := core.Freeze(idx, alpha)
	if err != nil {
		return err
	}

	fmt.Printf("sequence:        %s (%d characters)\n", name, len(data))
	fmt.Printf("build time:      %v (%.0f ns/char)\n", buildDur, float64(buildDur.Nanoseconds())/float64(max(1, len(data))))
	fmt.Printf("nodes:           %d (== length, plus root)\n", st.Length)
	fmt.Printf("ribs / extribs:  %d / %d\n", st.RibCount, st.ExtribCount)
	fmt.Printf("max labels:      LEL %d, PT %d, PRT %d (2-byte fields %v)\n",
		st.MaxLEL, st.MaxPT, st.MaxPRT, st.MaxLEL < 65535 && st.MaxPT < 65535)
	fmt.Printf("edge nodes:      %.1f%% of nodes have downstream edges\n", st.NodesWithEdgesPercent())
	fmt.Printf("fan-out:         1:%.1f%% 2:%.1f%% 3:%.1f%% 4:%.1f%%\n",
		st.FanoutPercent(1), st.FanoutPercent(2), st.FanoutPercent(3), st.FanoutPercent(4))
	fmt.Printf("reference mem:   %d bytes (%.1f B/char)\n", idx.MemoryBytes(),
		float64(idx.MemoryBytes())/float64(max(1, len(data))))
	fmt.Printf("compact layout:  %d bytes (%.2f B/char)\n", comp.SizeBytes(), comp.BytesPerChar())
	fmt.Printf("link histogram:  ")
	for i, v := range idx.LinkHistogram(buckets) {
		if i > 0 {
			fmt.Printf(" ")
		}
		fmt.Printf("%.1f%%", v)
	}
	fmt.Println()
	if verify {
		start = time.Now()
		if err := idx.Verify(); err != nil {
			return fmt.Errorf("integrity check FAILED: %w", err)
		}
		fmt.Printf("integrity:       verified in %v\n", time.Since(start))
	}
	return nil
}

func alphaOf(name string) *seq.Alphabet {
	for _, p := range seqgen.ProteinSuiteNames {
		if p == name {
			return seq.Protein
		}
	}
	return seq.DNA
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
