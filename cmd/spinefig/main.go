// Command spinefig emits Graphviz DOT renderings of the paper's structural
// figures for any input string: the suffix trie (Figure 1), the suffix
// tree with suffix links (Figure 2), and the SPINE index with all four
// edge kinds and their numeric labels (Figure 3). With the default input
// string aaccacaaca the output reproduces the paper's figures.
//
//	spinefig -fig 3 | dot -Tsvg > figure3.svg
//	spinefig -fig 1 -text mississippi
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/suffixtree"
	"github.com/spine-index/spine/internal/trie"
)

func main() {
	var (
		fig  = flag.Int("fig", 3, "figure to render: 1 (trie), 2 (suffix tree), 3 (SPINE)")
		text = flag.String("text", "aaccacaaca", "string to index (the paper's example by default)")
	)
	flag.Parse()
	if err := run(os.Stdout, *fig, *text); err != nil {
		fmt.Fprintln(os.Stderr, "spinefig:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, fig int, text string) error {
	if text == "" {
		return fmt.Errorf("empty input string")
	}
	switch fig {
	case 1:
		return trie.Build([]byte(text)).WriteDot(w)
	case 2:
		st, err := suffixtree.Build([]byte(text), 0)
		if err != nil {
			return err
		}
		return st.WriteDot(w)
	case 3:
		return core.Build([]byte(text)).WriteDot(w)
	}
	return fmt.Errorf("unknown figure %d (want 1, 2 or 3)", fig)
}
