package main

import (
	"strings"
	"testing"
)

func render(t *testing.T, fig int, text string) string {
	t.Helper()
	var b strings.Builder
	if err := run(&b, fig, text); err != nil {
		t.Fatalf("run(fig=%d): %v", fig, err)
	}
	return b.String()
}

func TestFigure3ReproducesPaperEdges(t *testing.T) {
	dot := render(t, 3, "aaccacaaca")
	// The Figure 3 edges the paper calls out explicitly.
	for _, want := range []string{
		`n3 -> n5 [label="a(1)"`,                // rib from node 3, PT 1
		`n5 -> n7 [style=dotted, label="1(2)"`,  // extrib 5->7, PRT 1, PT 2
		`n7 -> n10 [style=dotted, label="1(3)"`, // extrib 7->10, PRT 1, PT 3
		`n8 -> n2 [style=dashed`,                // "link from Node 8 to Node 2"
		`n0 -> n1 [label="a"`,                   // first vertebra
		`n9 -> n10 [label="a"`,                  // last vertebra
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Figure 3 DOT missing %q", want)
		}
	}
	if !strings.HasPrefix(dot, "digraph spine {") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Error("not a well-formed digraph")
	}
}

func TestFigure1And2Render(t *testing.T) {
	f1 := render(t, 1, "aaccacaaca")
	if !strings.Contains(f1, "digraph trie") || strings.Count(f1, "->") < 30 {
		t.Errorf("Figure 1 trie looks wrong (%d edges)", strings.Count(f1, "->"))
	}
	f2 := render(t, 2, "aaccacaaca")
	if !strings.Contains(f2, "digraph suffixtree") {
		t.Error("Figure 2 header missing")
	}
	if !strings.Contains(f2, "style=dashed") {
		t.Error("Figure 2 has no suffix links")
	}
	if !strings.Contains(f2, "$") {
		t.Error("Figure 2 terminal not displayed")
	}
}

func TestRunValidation(t *testing.T) {
	var b strings.Builder
	if err := run(&b, 9, "ac"); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run(&b, 3, ""); err == nil {
		t.Error("empty text accepted")
	}
}
