// Command spinesearch builds a SPINE index over a sequence and answers
// pattern queries: existence, first occurrence, and all occurrences.
//
// Usage:
//
//	spinesearch -fasta genome.fa -pattern acgtac -pattern ttga
//	spinesearch -synthetic eco -divide 100 -pattern acca -all=false
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
)

type patterns []string

func (p *patterns) String() string     { return strings.Join(*p, ",") }
func (p *patterns) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var pats patterns
	var (
		fasta     = flag.String("fasta", "", "FASTA file to index (first record)")
		synthetic = flag.String("synthetic", "", "synthetic suite sequence name")
		divide    = flag.Int("divide", 1, "scale divisor for synthetic sequences")
		all       = flag.Bool("all", true, "report all occurrences (not just the first)")
		limit     = flag.Int("limit", 20, "max occurrences to print per pattern")
	)
	flag.Var(&pats, "pattern", "pattern to search (repeatable)")
	flag.Parse()
	if err := run(*fasta, *synthetic, *divide, pats, *all, *limit); err != nil {
		fmt.Fprintln(os.Stderr, "spinesearch:", err)
		os.Exit(1)
	}
}

func run(fasta, synthetic string, divide int, pats []string, all bool, limit int) error {
	if len(pats) == 0 {
		return fmt.Errorf("at least one -pattern is required")
	}
	var data []byte
	switch {
	case fasta != "":
		f, err := os.Open(fasta)
		if err != nil {
			return err
		}
		defer f.Close()
		recs, err := seq.ReadFASTA(f)
		if err != nil {
			return err
		}
		data = seq.DNA.Sanitize(recs[0].Seq)
	case synthetic != "":
		s, err := seqgen.SuiteSequence(synthetic, divide)
		if err != nil {
			return err
		}
		data = s
	default:
		return fmt.Errorf("one of -fasta or -synthetic is required")
	}

	start := time.Now()
	idx := core.Build(data)
	fmt.Printf("indexed %d characters in %v\n", len(data), time.Since(start))

	for _, p := range pats {
		pb := []byte(p)
		start = time.Now()
		if !all {
			pos := idx.Find(pb)
			dur := time.Since(start)
			if pos < 0 {
				fmt.Printf("%-20q not found (%v)\n", p, dur)
			} else {
				fmt.Printf("%-20q first at %d (%v)\n", p, pos, dur)
			}
			continue
		}
		occ := idx.FindAll(pb)
		dur := time.Since(start)
		if len(occ) == 0 {
			fmt.Printf("%-20q not found (%v)\n", p, dur)
			continue
		}
		shown := occ
		suffix := ""
		if len(shown) > limit {
			shown = shown[:limit]
			suffix = fmt.Sprintf(" ... (%d total)", len(occ))
		}
		fmt.Printf("%-20q %d occurrences (%v): %v%s\n", p, len(occ), dur, shown, suffix)
	}
	return nil
}
