package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFASTA(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fa")
	if err := os.WriteFile(path, []byte(">g\nacgtacgtacca\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFindsPatterns(t *testing.T) {
	if err := run(writeFASTA(t), "", 1, []string{"acgt", "zz"}, true, 5); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunFirstOnly(t *testing.T) {
	if err := run(writeFASTA(t), "", 1, []string{"acca"}, false, 5); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSynthetic(t *testing.T) {
	if err := run("", "eco", 1000, []string{"acgt"}, true, 3); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRequiresPattern(t *testing.T) {
	if err := run(writeFASTA(t), "", 1, nil, true, 5); err == nil {
		t.Fatal("missing pattern accepted")
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run("", "", 1, []string{"a"}, true, 5); err == nil {
		t.Fatal("missing input accepted")
	}
}
