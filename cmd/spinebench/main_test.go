package main

import "testing"

func TestRunSelectedExperiments(t *testing.T) {
	// Tiny scale: just exercise the wiring of each selectable experiment id
	// that doesn't need disk time.
	if err := run("table2,table3,fig8,size", 2000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunMatchExperiments(t *testing.T) {
	if err := run("table5,table6", 2000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunDiskExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("disk experiments skipped in -short")
	}
	if err := run("fig7,policy", 4000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("tablez", 2000, false, 0.1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
