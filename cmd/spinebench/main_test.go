package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSelectedExperiments(t *testing.T) {
	// Tiny scale: just exercise the wiring of each selectable experiment id
	// that doesn't need disk time.
	if err := run("table2,table3,fig8,size,latency", 2000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestParseMix(t *testing.T) {
	mix, err := parseMix("contains:5, findall:2,count")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 3 || mix[0].Weight != 5 || mix[1].Weight != 2 || mix[2].Weight != 1 {
		t.Fatalf("mix = %+v", mix)
	}
	if mix[2].Endpoint != "count" {
		t.Fatalf("bare endpoint parsed as %q", mix[2].Endpoint)
	}
	if _, err := parseMix("contains:x"); err == nil {
		t.Fatal("bad weight accepted")
	}
	if mix, err := parseMix(""); err != nil || mix != nil {
		t.Fatalf("empty spec: %v, %v", mix, err)
	}
}

func TestRunLoadMode(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()
	promFile := filepath.Join(t.TempDir(), "load.prom")
	if err := runLoad(ts.URL+"/", 12, 2, "contains:1", "eco", 8, 4000, time.Second, promFile, false); err != nil {
		t.Fatalf("runLoad: %v", err)
	}
	if hits.Load() != 12 {
		t.Fatalf("hits = %d, want 12", hits.Load())
	}
	prom, err := os.ReadFile(promFile)
	if err != nil {
		t.Fatalf("prom output not written: %v", err)
	}
	if !strings.Contains(string(prom), `spinebench_requests_total{endpoint="contains"} 12`) {
		t.Fatalf("prom output missing request counter:\n%s", prom)
	}
	if err := runLoad(ts.URL, 12, 2, "contains:1", "eco", 1<<30, 4000, time.Second, "", false); err == nil {
		t.Fatal("oversized pattern length accepted")
	}
}

// TestRunLoadObsCheck exercises the wide-event cross-check against a
// mock server whose /metrics counters either agree or disagree with the
// requests issued.
func TestRunLoadObsCheck(t *testing.T) {
	newMock := func(perRequestEvents int64) *httptest.Server {
		var queries atomic.Int64
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/metrics" {
				fmt.Fprintf(w, `{"obs":{"enabled":true,"emittedQuery":%d,"dropped":0}}`,
					queries.Load()*perRequestEvents)
				return
			}
			queries.Add(1)
			w.Write([]byte(`{}`))
		}))
	}

	good := newMock(1)
	defer good.Close()
	if err := runLoad(good.URL, 10, 2, "contains:1", "eco", 8, 4000, time.Second, "", true); err != nil {
		t.Fatalf("matching event counts rejected: %v", err)
	}

	bad := newMock(2) // server claims two events per query
	defer bad.Close()
	err := runLoad(bad.URL, 10, 2, "contains:1", "eco", 8, 4000, time.Second, "", true)
	if err == nil || !strings.Contains(err.Error(), "query events") {
		t.Fatalf("mismatched event counts accepted: %v", err)
	}

	// A server without the obs layer skips the check instead of failing.
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer plain.Close()
	if err := runLoad(plain.URL, 10, 2, "contains:1", "eco", 8, 4000, time.Second, "", true); err != nil {
		t.Fatalf("obs-less server failed the check: %v", err)
	}
}

func TestRunMatchExperiments(t *testing.T) {
	if err := run("table5,table6", 2000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunDiskExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("disk experiments skipped in -short")
	}
	if err := run("fig7,policy", 4000, false, 0.1); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	if err := run("tablez", 2000, false, 0.1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
