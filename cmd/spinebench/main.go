// Command spinebench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §2 for the experiment index).
//
// Usage:
//
//	spinebench -exp all -divide 100        # every experiment at 1/100 scale
//	spinebench -exp fig6,table5 -divide 16 # selected experiments, larger
//	spinebench -exp fig7 -divide 1 -sync   # paper-scale disk build, O_SYNC
//
// At -divide 1 the corpus matches the paper's sequence lengths (eco 3.5M,
// cel 15.5M, hc21 28.5M, hc19 57.5M characters); expect multi-hour runs
// for the disk experiments with -sync.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/spine-index/spine/internal/bench"
	"github.com/spine-index/spine/internal/pager"
	"github.com/spine-index/spine/internal/seqgen"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids: table2,table3,table4,fig6,table5,table6,fig7,fig8,table7,size,protein,policy,filter,linear or all")
		divide   = flag.Int("divide", 100, "scale divisor for sequence lengths (1 = paper scale)")
		sync     = flag.Bool("sync", false, "use synchronous page writes for disk experiments (paper methodology; slow)")
		fraction = flag.Float64("buffer", 0.1, "disk buffer pool size as a fraction of the index footprint")
	)
	flag.Parse()
	if err := run(*exps, *divide, *sync, *fraction); err != nil {
		fmt.Fprintln(os.Stderr, "spinebench:", err)
		os.Exit(1)
	}
}

func run(exps string, divide int, sync bool, fraction float64) error {
	c := bench.NewCorpus(divide)
	diskCfg := bench.DiskConfig{Sync: sync, BufferFraction: fraction, Policy: pager.TopRetention}

	want := map[string]bool{}
	all := exps == "all"
	for _, e := range strings.Split(exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(id string) bool { return all || want[id] }

	type experiment struct {
		id  string
		run func() (bench.Table, error)
	}
	plan := []experiment{
		{"table2", func() (bench.Table, error) { return bench.Table2NodeContent(), nil }},
		{"table3", func() (bench.Table, error) { return bench.Table3LabelValues(c, seqgen.SuiteNames) }},
		{"table4", func() (bench.Table, error) { return bench.Table4RibDistribution(c, seqgen.SuiteNames) }},
		{"fig6", func() (bench.Table, error) { return bench.Fig6ConstructInMemory(c, seqgen.SuiteNames) }},
		{"table5", func() (bench.Table, error) { return bench.Table5MatchInMemory(c, bench.Table5Pairs) }},
		{"table6", func() (bench.Table, error) { return bench.Table6NodesChecked(c, bench.Table6Pairs) }},
		{"fig7", func() (bench.Table, error) {
			return bench.Fig7ConstructOnDisk(c, []string{"eco", "cel", "hc21"}, diskCfg)
		}},
		{"fig8", func() (bench.Table, error) {
			return bench.Fig8LinkDistribution(c, []string{"eco", "cel", "hc21"}, 6)
		}},
		{"table7", func() (bench.Table, error) { return bench.Table7MatchOnDisk(c, bench.Table7Pairs, diskCfg) }},
		{"size", func() (bench.Table, error) { return bench.BytesPerChar(c, seqgen.SuiteNames) }},
		{"protein", func() (bench.Table, error) { return bench.ProteinSuite(c, seqgen.ProteinSuiteNames) }},
		{"policy", func() (bench.Table, error) { return bench.BufferPolicyAblation(c, "eco") }},
		{"filter", func() (bench.Table, error) { return bench.FilterComparison(c, "eco") }},
		{"linear", func() (bench.Table, error) { return bench.Linearity(c, "cel", 5) }},
	}

	fmt.Printf("spinebench: scale divisor %d (paper scale = 1), sync=%v\n\n", divide, sync)
	ran := 0
	for _, e := range plan {
		if !sel(e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", exps)
	}
	return nil
}
