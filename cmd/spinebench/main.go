// Command spinebench regenerates the paper's evaluation tables and
// figures (see DESIGN.md §2 for the experiment index).
//
// Usage:
//
//	spinebench -exp all -divide 100        # every experiment at 1/100 scale
//	spinebench -exp fig6,table5 -divide 16 # selected experiments, larger
//	spinebench -exp fig7 -divide 1 -sync   # paper-scale disk build, O_SYNC
//
// It doubles as a load generator for a running spineserve instance,
// replaying a weighted query mix and reporting per-endpoint latency
// histograms (the client-side view of the server's /metrics):
//
//	spinebench -load http://localhost:8080 -load-n 10000 -load-c 16 \
//	    -load-mix contains:5,findall:2,count:1 -load-seq eco -load-plen 12
//
// With -load-prom the per-endpoint results are also written in
// Prometheus text exposition format (spinebench_* families), ready to
// diff against the server's /metrics?format=prom. Every generated
// request carries a deterministic W3C traceparent and X-Request-Id, and
// (unless -load-check-obs=false) the server's wide-event counters are
// cross-checked after the run: one event per request, zero dropped.
//
// With -batch N the load mode instead compares one POST /batch of N
// patterns against N sequential GET /findall calls (same patterns, same
// limits, counts cross-checked) and optionally writes the JSON report:
//
//	spinebench -load http://localhost:8080 -batch 16 -batch-rounds 30 \
//	    -batch-out BENCH_batch.json
//
// With -scan it instead benchmarks the in-process occurrence scan:
// the scalar §4 node-by-node pass versus the block-max skip index
// versus the word-parallel SWAR kernel, on both layouts, positions
// cross-checked against the scalar oracle every round. -kernel selects
// the accelerated arms (all, swar or scalar):
//
//	spinebench -scan -scan-seq eco -divide 3 -kernel all -scan-out BENCH_scan.json
//
// With -pscan it benchmarks the intra-query partitioned backbone scan
// across a worker ladder: the same low-selectivity FindAll and Count
// queries at 1, 2, 4 and 8 scan workers, positions cross-checked
// against the 1-worker sequential oracle every round and NodesChecked
// verified identical at every rung (the stitch's admission replay).
// Wall-clock speedup needs real cores; the report records GOMAXPROCS:
//
//	spinebench -pscan -pscan-seq cel -divide 1 -pscan-out BENCH_pscan.json
//
// With -cache it benchmarks the serving cache layer in-process: a
// Zipf(s=1.1) hot-pattern stream against the raw sharded index versus
// the Cached decorator, plus absent-pattern p50 latency with and
// without the q-gram negative filter, every cached answer
// cross-checked against the raw index:
//
//	spinebench -cache -cache-seq eco -divide 10 -cache-out BENCH_cache.json
//
// With -disk it benchmarks serving straight from the on-disk compact
// image: cold-open latency of the heap deserializer versus the
// zero-copy mmap open and the portable io.ReaderAt fallback, a
// differential query pass against the heap reference, and a
// full-backbone occurrence sweep under a small readahead range-cache
// budget (the larger-than-RAM streaming regime):
//
//	spinebench -disk -disk-seq cel -divide 1 -disk-out BENCH_disk.json
//
// With -obs it benchmarks the wide-event observability layer
// in-process: the same traced findall queries with the exporter off
// versus on (JSONL sink), reporting the query-path overhead and
// validating that every exported line decodes and nothing was dropped:
//
//	spinebench -obs -obs-seq eco -divide 10 -obs-out BENCH_obs.json
//
// At -divide 1 the corpus matches the paper's sequence lengths (eco 3.5M,
// cel 15.5M, hc21 28.5M, hc19 57.5M characters); expect multi-hour runs
// for the disk experiments with -sync.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/spine-index/spine/internal/bench"
	"github.com/spine-index/spine/internal/bench/cachebench"
	"github.com/spine-index/spine/internal/bench/diskbench"
	"github.com/spine-index/spine/internal/bench/obsbench"
	"github.com/spine-index/spine/internal/pager"
	"github.com/spine-index/spine/internal/seqgen"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids: table2,table3,table4,fig6,table5,table6,fig7,fig8,table7,size,protein,policy,filter,linear,latency or all")
		divide   = flag.Int("divide", 100, "scale divisor for sequence lengths (1 = paper scale)")
		sync     = flag.Bool("sync", false, "use synchronous page writes for disk experiments (paper methodology; slow)")
		fraction = flag.Float64("buffer", 0.1, "disk buffer pool size as a fraction of the index footprint")

		loadURL  = flag.String("load", "", "spineserve base URL; switches to load-generator mode")
		loadN    = flag.Int("load-n", 1000, "load mode: total requests")
		loadC    = flag.Int("load-c", 8, "load mode: concurrent workers")
		loadMix  = flag.String("load-mix", "", "load mode: weighted mix, e.g. contains:5,findall:2 (default: built-in blend)")
		loadSeq  = flag.String("load-seq", "eco", "load mode: suite sequence to sample query patterns from")
		loadPlen = flag.Int("load-plen", 12, "load mode: sampled pattern length")
		loadTO   = flag.Duration("load-timeout", 30*time.Second, "load mode: per-request client timeout")
		loadProm = flag.String("load-prom", "", `load mode: also write Prometheus text metrics to this file ("-" = stdout)`)
		loadObs  = flag.Bool("load-check-obs", true, "load mode: cross-check the server's wide-event count against requests issued (skipped when the server has no obs layer; needs an otherwise idle server)")

		batchN      = flag.Int("batch", 0, "load mode: compare one /batch of N patterns vs N sequential /findall calls (0 = off)")
		batchRounds = flag.Int("batch-rounds", 20, "batch mode: measured rounds per mode")
		batchLimit  = flag.Int("batch-limit", 100, "batch mode: per-item result limit (0 = server default)")
		batchOut    = flag.String("batch-out", "", "batch mode: write the JSON comparison report to this file")

		scanMode   = flag.Bool("scan", false, "compare the scalar, block-skip and SWAR occurrence scans in-process")
		scanSeq    = flag.String("scan-seq", "eco", "scan mode: suite sequence to index")
		scanRounds = flag.Int("scan-rounds", 5, "scan mode: measured rounds per mode")
		scanKernel = flag.String("kernel", "all", "scan mode: accelerated arms to measure against the scalar oracle: all, swar or scalar")
		scanOut    = flag.String("scan-out", "", "scan mode: write the JSON comparison report to this file")

		pscanMode    = flag.Bool("pscan", false, "measure the intra-query partitioned scan across a worker ladder in-process")
		pscanSeq     = flag.String("pscan-seq", "cel", "pscan mode: suite sequence to index")
		pscanRounds  = flag.Int("pscan-rounds", 5, "pscan mode: measured rounds per rung")
		pscanPlen    = flag.Int("pscan-plen", 8, "pscan mode: sampled pattern length (short = low-selectivity, scan-bound queries)")
		pscanPats    = flag.Int("pscan-pats", 4, "pscan mode: patterns per round")
		pscanWorkers = flag.String("pscan-workers", "1,2,4,8", "pscan mode: comma-separated worker ladder; must start at 1 (the sequential oracle)")
		pscanOut     = flag.String("pscan-out", "", "pscan mode: write the JSON comparison report (BENCH_pscan.json) to this file")

		cacheMode = flag.Bool("cache", false, "benchmark the serving cache + negative filter in-process")
		cacheSeq  = flag.String("cache-seq", "eco", "cache mode: suite sequence to index")
		cacheN    = flag.Int("cache-n", 20000, "cache mode: Zipf requests per mode")
		cacheZipf = flag.Float64("cache-zipf", 1.1, "cache mode: Zipf exponent of the hot-pattern stream")
		cacheOut  = flag.String("cache-out", "", "cache mode: write the JSON comparison report to this file")

		diskMode   = flag.Bool("disk", false, "benchmark cold-open modes and the streamed occurrence sweep over the on-disk compact image")
		diskSeq    = flag.String("disk-seq", "eco", "disk mode: suite sequence to index")
		diskRounds = flag.Int("disk-rounds", 3, "disk mode: cold opens per mode")
		diskRC     = flag.Int64("disk-rangecache", 1<<20, "disk mode: readahead range-cache byte budget for the sweep")
		diskOut    = flag.String("disk-out", "", "disk mode: write the JSON comparison report (BENCH_disk.json) to this file")

		obsMode = flag.Bool("obs", false, "benchmark the wide-event exporter's query-path overhead in-process")
		obsSeq  = flag.String("obs-seq", "eco", "obs mode: suite sequence to index")
		obsN    = flag.Int("obs-n", 2000, "obs mode: queries per arm")
		obsPlen = flag.Int("obs-plen", 4, "obs mode: sampled pattern length (short = occurrence-heavy queries)")
		obsOut  = flag.String("obs-out", "", "obs mode: write the JSON comparison report (BENCH_obs.json) to this file")
	)
	flag.Parse()
	if *obsMode {
		if err := runObsBench(*obsSeq, *divide, *obsN, *obsPlen, *obsOut); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if *diskMode {
		if err := runDiskBench(*diskSeq, *divide, *diskRounds, *diskRC, *diskOut); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if *cacheMode {
		if err := runCacheBench(*cacheSeq, *divide, *cacheN, *cacheZipf, *cacheOut); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if *pscanMode {
		if err := runPScanBench(*pscanSeq, *divide, *pscanRounds, *pscanPlen, *pscanPats, *pscanWorkers, *pscanOut); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if *scanMode {
		if err := runScanBench(*scanSeq, *divide, *scanRounds, *scanKernel, *scanOut); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if *loadURL != "" {
		if *batchN > 0 {
			if err := runBatchCompare(*loadURL, *batchN, *batchRounds, *batchLimit, *loadSeq, *loadPlen, *divide, *loadTO, *batchOut); err != nil {
				fmt.Fprintln(os.Stderr, "spinebench:", err)
				os.Exit(1)
			}
			return
		}
		if err := runLoad(*loadURL, *loadN, *loadC, *loadMix, *loadSeq, *loadPlen, *divide, *loadTO, *loadProm, *loadObs); err != nil {
			fmt.Fprintln(os.Stderr, "spinebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exps, *divide, *sync, *fraction); err != nil {
		fmt.Fprintln(os.Stderr, "spinebench:", err)
		os.Exit(1)
	}
}

// runLoad replays a query mix against a running spineserve and prints
// the per-endpoint latency table. With checkObs the server's wide-event
// counters are snapshotted around the run and the event delta must match
// the requests issued exactly, with zero drops — the end-to-end proof
// that every query produced its event and none were lost.
func runLoad(url string, n, workers int, mixSpec, seqName string, plen, divide int, timeout time.Duration, promPath string, checkObs bool) error {
	mix, err := parseMix(mixSpec)
	if err != nil {
		return err
	}
	c := bench.NewCorpus(divide)
	text, err := c.Get(seqName)
	if err != nil {
		return err
	}
	patterns := bench.SamplePatterns(text, 256, plen)
	if len(patterns) == 0 {
		return fmt.Errorf("cannot sample %d-char patterns from %s at divisor %d (%d chars)",
			plen, seqName, divide, len(text))
	}
	base := strings.TrimRight(url, "/")
	var before bench.ObsStats
	if checkObs {
		st, err := bench.FetchObsStats(base, timeout)
		if err != nil {
			return fmt.Errorf("obs pre-check: %w", err)
		}
		before = st
	}
	table, results, err := bench.RunLoad(bench.LoadConfig{
		BaseURL:     base,
		Patterns:    patterns,
		Mix:         mix,
		Requests:    n,
		Concurrency: workers,
		Timeout:     timeout,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if checkObs {
		if !before.Enabled {
			fmt.Println("obs check: server has no wide-event layer; skipped")
		} else {
			// Events are emitted after the response is written, so the
			// last few may land just after the client saw its reply; give
			// the counters a moment to settle before judging.
			var after bench.ObsStats
			for i := 0; i < 20; i++ {
				after, err = bench.FetchObsStats(base, timeout)
				if err != nil {
					return fmt.Errorf("obs post-check: %w", err)
				}
				if after.EmittedQuery-before.EmittedQuery >= int64(n) {
					break
				}
				time.Sleep(100 * time.Millisecond)
			}
			events := after.EmittedQuery - before.EmittedQuery
			dropped := after.Dropped - before.Dropped
			fmt.Printf("obs check: %d wide events for %d requests, %d dropped\n", events, n, dropped)
			if events != int64(n) {
				return fmt.Errorf("obs check: server emitted %d query events for %d requests", events, n)
			}
			if dropped != 0 {
				return fmt.Errorf("obs check: exporter dropped %d events under load", dropped)
			}
		}
	}
	if promPath != "" {
		out := os.Stdout
		if promPath != "-" {
			f, err := os.Create(promPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteLoadPrometheus(out, results); err != nil {
			return err
		}
	}
	return nil
}

// runBatchCompare measures one /batch of n patterns against n
// sequential /findall calls and prints the comparison table; with
// outPath the JSON report (BENCH_batch.json format) is written too.
func runBatchCompare(url string, n, rounds, limit int, seqName string, plen, divide int, timeout time.Duration, outPath string) error {
	c := bench.NewCorpus(divide)
	text, err := c.Get(seqName)
	if err != nil {
		return err
	}
	patterns := bench.SamplePatterns(text, 256, plen)
	if len(patterns) == 0 {
		return fmt.Errorf("cannot sample %d-char patterns from %s at divisor %d (%d chars)",
			plen, seqName, divide, len(text))
	}
	table, report, err := bench.RunBatchCompare(bench.BatchCompareConfig{
		BaseURL:   strings.TrimRight(url, "/"),
		Patterns:  patterns,
		BatchSize: n,
		Rounds:    rounds,
		Limit:     limit,
		Timeout:   timeout,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runObsBench measures the wide-event exporter's query-path overhead on
// an in-process index (export off vs JSONL export on, same traced
// queries) and validates the JSONL output; with outPath the JSON report
// (BENCH_obs.json format) is written too.
func runObsBench(seqName string, divide, requests, plen int, outPath string) error {
	c := bench.NewCorpus(divide)
	table, report, err := obsbench.RunObsBench(c, obsbench.ObsBenchConfig{
		Sequence:   seqName,
		Requests:   requests,
		PatternLen: plen,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	if !report.JSONLValid {
		return fmt.Errorf("obs bench: JSONL export failed validation")
	}
	if report.Dropped != 0 {
		return fmt.Errorf("obs bench: exporter dropped %d events", report.Dropped)
	}
	return nil
}

// runScanBench compares the scalar, block-skip and SWAR occurrence
// scans on an in-process index over the given suite sequence and prints
// the comparison table; with outPath the JSON report (BENCH_scan.json
// format) is written too.
func runScanBench(seqName string, divide, rounds int, kernel, outPath string) error {
	c := bench.NewCorpus(divide)
	table, report, err := bench.RunScanBench(c, bench.ScanBenchConfig{
		Sequence: seqName,
		Rounds:   rounds,
		Kernel:   kernel,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runPScanBench measures the intra-query partitioned scan across a
// worker ladder on an in-process index (positions cross-checked against
// the 1-worker sequential oracle every round, NodesChecked verified
// parallelism-invariant) and prints the comparison table; with outPath
// the JSON report (BENCH_pscan.json format) is written too.
func runPScanBench(seqName string, divide, rounds, plen, pats int, workersSpec, outPath string) error {
	var ladder []int
	for _, part := range strings.Split(workersSpec, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad -pscan-workers entry %q", part)
		}
		ladder = append(ladder, w)
	}
	c := bench.NewCorpus(divide)
	table, report, err := bench.RunPScanBench(c, bench.PScanBenchConfig{
		Sequence:   seqName,
		PatternLen: plen,
		Patterns:   pats,
		Rounds:     rounds,
		Workers:    ladder,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runDiskBench measures cold opens of the saved compact image in every
// available mode plus the budgeted streaming sweep and prints the
// comparison table; with outPath the JSON report (BENCH_disk.json
// format) is written too.
func runDiskBench(seqName string, divide, rounds int, rangeCacheBytes int64, outPath string) error {
	c := bench.NewCorpus(divide)
	table, report, err := diskbench.RunDiskBench(c, diskbench.Config{
		Sequence:        seqName,
		Rounds:          rounds,
		RangeCacheBytes: rangeCacheBytes,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// runCacheBench compares the raw sharded index against the serving
// cache (and the negative filter on absent patterns) over the given
// suite sequence and prints the comparison table; with outPath the
// JSON report (BENCH_cache.json format) is written too.
func runCacheBench(seqName string, divide, requests int, zipfS float64, outPath string) error {
	c := bench.NewCorpus(divide)
	table, report, err := cachebench.RunCacheBench(c, cachebench.CacheBenchConfig{
		Sequence: seqName,
		Requests: requests,
		ZipfS:    zipfS,
	})
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	if outPath != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// parseMix parses "contains:5,findall:2" into mix entries; an empty spec
// selects the built-in default blend.
func parseMix(spec string) ([]bench.MixEntry, error) {
	if spec == "" {
		return nil, nil
	}
	var mix []bench.MixEntry
	for _, part := range strings.Split(spec, ",") {
		ep, ws, ok := strings.Cut(strings.TrimSpace(part), ":")
		w := 1
		if ok {
			n, err := strconv.Atoi(ws)
			if err != nil {
				return nil, fmt.Errorf("bad mix weight in %q", part)
			}
			w = n
		}
		mix = append(mix, bench.MixEntry{Endpoint: ep, Weight: w})
	}
	return mix, nil
}

func run(exps string, divide int, sync bool, fraction float64) error {
	c := bench.NewCorpus(divide)
	diskCfg := bench.DiskConfig{Sync: sync, BufferFraction: fraction, Policy: pager.TopRetention}

	want := map[string]bool{}
	all := exps == "all"
	for _, e := range strings.Split(exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	sel := func(id string) bool { return all || want[id] }

	type experiment struct {
		id  string
		run func() (bench.Table, error)
	}
	plan := []experiment{
		{"table2", func() (bench.Table, error) { return bench.Table2NodeContent(), nil }},
		{"table3", func() (bench.Table, error) { return bench.Table3LabelValues(c, seqgen.SuiteNames) }},
		{"table4", func() (bench.Table, error) { return bench.Table4RibDistribution(c, seqgen.SuiteNames) }},
		{"fig6", func() (bench.Table, error) { return bench.Fig6ConstructInMemory(c, seqgen.SuiteNames) }},
		{"table5", func() (bench.Table, error) { return bench.Table5MatchInMemory(c, bench.Table5Pairs) }},
		{"table6", func() (bench.Table, error) { return bench.Table6NodesChecked(c, bench.Table6Pairs) }},
		{"fig7", func() (bench.Table, error) {
			return bench.Fig7ConstructOnDisk(c, []string{"eco", "cel", "hc21"}, diskCfg)
		}},
		{"fig8", func() (bench.Table, error) {
			return bench.Fig8LinkDistribution(c, []string{"eco", "cel", "hc21"}, 6)
		}},
		{"table7", func() (bench.Table, error) { return bench.Table7MatchOnDisk(c, bench.Table7Pairs, diskCfg) }},
		{"size", func() (bench.Table, error) { return bench.BytesPerChar(c, seqgen.SuiteNames) }},
		{"protein", func() (bench.Table, error) { return bench.ProteinSuite(c, seqgen.ProteinSuiteNames) }},
		{"policy", func() (bench.Table, error) { return bench.BufferPolicyAblation(c, "eco") }},
		{"filter", func() (bench.Table, error) { return bench.FilterComparison(c, "eco") }},
		{"linear", func() (bench.Table, error) { return bench.Linearity(c, "cel", 5) }},
		{"latency", func() (bench.Table, error) {
			return bench.QueryLatency(c, "eco", []int{8, 16, 32, 64}, 64)
		}},
	}

	fmt.Printf("spinebench: scale divisor %d (paper scale = 1), sync=%v\n\n", divide, sync)
	ran := 0
	for _, e := range plan {
		if !sel(e.id) {
			continue
		}
		t, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		t.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matched %q", exps)
	}
	return nil
}
