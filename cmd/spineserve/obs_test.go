package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// obsApp builds a fully instrumented server: every query traced, wide
// events collected in memory, RED rollup + SLO engine live.
func obsApp(t *testing.T, q spine.Querier) (*server, *httptest.Server, *obs.CollectorSink) {
	t.Helper()
	sink := obs.NewCollectorSink()
	red := obs.NewRED(100 * time.Millisecond)
	pipe := obs.NewPipeline(obs.Config{RED: red}, sink)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		pipe.Close(ctx)
	})
	cfg := defaultConfig()
	cfg.traceSample = 1
	cfg.pipeline = pipe
	cfg.slo = obs.NewSLO(obs.SLOConfig{
		Availability:     0.999,
		LatencyObjective: 0.99,
		LatencyThreshold: 100 * time.Millisecond,
	}, red)
	app := newQueryServer(q, cfg)
	ts := httptest.NewServer(app.mux())
	t.Cleanup(ts.Close)
	return app, ts, sink
}

func flushEvents(t *testing.T, app *server, sink *obs.CollectorSink) []obs.Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := app.pipe.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return sink.Events()
}

func eventsOfType(evs []obs.Event, typ string) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

func stageNodeSum(e obs.Event) int64 {
	var n int64
	for _, st := range e.Stages {
		n += st.Nodes
	}
	return n
}

// TestWideEventNodePartition is the acceptance differential: across
// every index flavor (reference, compact, sharded, cached) the single
// query event's stage node counters sum exactly to its NodesChecked,
// which in turn matches the registry's work total — one consistent
// answer to "how much work did this query do" across all three
// telemetry surfaces.
func TestWideEventNodePartition(t *testing.T) {
	data := bytes.Repeat([]byte("acgtacgtttgcaacg"), 256)
	compact, err := spine.Build(data).Compact(spine.DNA)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := spine.BuildSharded(data, 1024, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := spine.Cached(spine.Build(data), spine.CacheConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	flavors := []struct {
		name string
		q    spine.Querier
	}{
		{"index", spine.Build(data)},
		{"compact", compact},
		{"sharded", sharded},
		{"cached", cached},
	}
	var wantCount = -1
	for _, f := range flavors {
		t.Run(f.name, func(t *testing.T) {
			app, ts, sink := obsApp(t, f.q)
			resp, err := http.Get(ts.URL + "/v1/findall?q=acgtacg")
			if err != nil {
				t.Fatal(err)
			}
			var body struct {
				Count int `json:"count"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()

			evs := flushEvents(t, app, sink)
			queries := eventsOfType(evs, obs.EventQuery)
			if len(queries) != 1 {
				t.Fatalf("got %d query events, want exactly 1 (events: %+v)", len(queries), evs)
			}
			e := queries[0]
			if e.Endpoint != "findall" || e.Kind != "findall" || e.Status != http.StatusOK {
				t.Fatalf("event identity wrong: %+v", e)
			}
			if e.Pattern.Prefix != "acgtacg" || e.Pattern.Len != 7 {
				t.Fatalf("event fingerprint wrong: %+v", e.Pattern)
			}
			if e.NodesChecked == 0 {
				t.Fatal("query did no work; partition check is vacuous")
			}
			if got := stageNodeSum(e); got != e.NodesChecked {
				t.Fatalf("stage nodes sum to %d, want NodesChecked %d (stages: %+v)",
					got, e.NodesChecked, e.Stages)
			}
			if reg := app.reg.Query.NodesChecked.Value(); e.NodesChecked != reg {
				t.Fatalf("event NodesChecked = %d, registry reports %d", e.NodesChecked, reg)
			}
			if wantCount == -1 {
				wantCount = e.ResultCount
			} else if e.ResultCount != wantCount {
				t.Fatalf("%s found %d occurrences, other flavors found %d", f.name, e.ResultCount, wantCount)
			}
			if body.Count != e.ResultCount {
				t.Fatalf("event ResultCount = %d, response count = %d", e.ResultCount, body.Count)
			}

			// Sharded fan-outs additionally partition the same total
			// across their shard-leg events.
			if f.name == "sharded" {
				legs := eventsOfType(evs, obs.EventShardLeg)
				if len(legs) == 0 {
					t.Fatal("sharded query emitted no shard-leg events")
				}
				var legNodes int64
				for _, leg := range legs {
					legNodes += leg.NodesChecked
					if sum := stageNodeSum(leg); len(leg.Stages) > 0 && sum != leg.NodesChecked {
						t.Fatalf("leg %d stage nodes sum to %d, want %d", leg.Shard, sum, leg.NodesChecked)
					}
				}
				if legNodes != e.NodesChecked {
					t.Fatalf("shard legs sum to %d nodes, query reports %d", legNodes, e.NodesChecked)
				}
			}
		})
	}
}

// TestWideEventCacheHit verifies the cache outcome lands in the event:
// the second identical query answers from the cache with zero node work
// and says so.
func TestWideEventCacheHit(t *testing.T) {
	cached, err := spine.Cached(spine.Build([]byte("abracadabra")), spine.CacheConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	app, ts, sink := obsApp(t, cached)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/findall?q=abra")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	queries := eventsOfType(flushEvents(t, app, sink), obs.EventQuery)
	if len(queries) != 2 {
		t.Fatalf("got %d query events, want 2", len(queries))
	}
	if queries[0].Source != "scan" {
		t.Fatalf("first query Source = %q, want scan", queries[0].Source)
	}
	if queries[1].Source != "cache" || queries[1].NodesChecked != 0 {
		t.Fatalf("second query Source = %q NodesChecked = %d, want cache hit with 0 nodes",
			queries[1].Source, queries[1].NodesChecked)
	}
}

// TestBatchItemEvents verifies a /batch request trades its request-level
// query event for one event per item — all children of the request span
// (taken from the echoed traceparent) — including rejected items, with
// their node counters summing to the registry's batch total.
func TestBatchItemEvents(t *testing.T) {
	app, ts, sink := obsApp(t, spine.Build([]byte("abracadabra")))

	long := strings.Repeat("x", app.cfg.maxPatternLen+1)
	body, _ := json.Marshal(map[string]any{"patterns": []string{"abra", long, "cad", "zzz"}})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	tp, ok := obs.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("batch response traceparent %q did not parse", resp.Header.Get("traceparent"))
	}

	evs := flushEvents(t, app, sink)
	if qs := eventsOfType(evs, obs.EventQuery); len(qs) != 0 {
		t.Fatalf("batch request also emitted %d query events; items must replace it", len(qs))
	}
	items := eventsOfType(evs, obs.EventBatchItem)
	if len(items) != 4 {
		t.Fatalf("got %d batch-item events, want one per request item (4)", len(items))
	}
	var nodes int64
	seen := map[int]bool{}
	for _, it := range items {
		seen[it.BatchIndex] = true
		nodes += it.NodesChecked
		if it.TraceID != tp.TraceID.String() || it.ParentSpanID != tp.SpanID.String() {
			t.Fatalf("item %d not a child of the request span: %+v (want trace %s parent %s)",
				it.BatchIndex, it, tp.TraceID, tp.SpanID)
		}
		if it.Endpoint != "batch" {
			t.Fatalf("item endpoint = %q", it.Endpoint)
		}
	}
	for i := 0; i < 4; i++ {
		if !seen[i] {
			t.Fatalf("no event for batch index %d", i)
		}
	}
	byIndex := make([]obs.Event, 4)
	for _, it := range items {
		byIndex[it.BatchIndex] = it
	}
	if byIndex[1].Error != codePatternTooLong || byIndex[1].DurationUs != 0 {
		t.Fatalf("oversized item event = %+v, want error %q with 0 engine time", byIndex[1], codePatternTooLong)
	}
	if byIndex[0].Error != "" || byIndex[0].ResultCount != 2 || byIndex[0].Pattern.Prefix != "abra" {
		t.Fatalf("item 0 event wrong: %+v", byIndex[0])
	}
	if byIndex[3].ResultCount != 0 || byIndex[3].Error != "" {
		t.Fatalf("absent-pattern item event wrong: %+v", byIndex[3])
	}
	if reg := app.reg.Query.NodesChecked.Value(); nodes != reg {
		t.Fatalf("batch-item events sum to %d nodes, registry reports %d", nodes, reg)
	}
}

// TestCorrelationRoundTrip is the acceptance check for header
// propagation: the client's X-Request-Id and traceparent survive the
// round trip, the response carries the server's own span on the same
// trace, and every shard-leg event parents on that span.
func TestCorrelationRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte("acgtacgtttgcaacg"), 256)
	sh, err := spine.BuildSharded(data, 1024, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	app, ts, sink := obsApp(t, sh)

	const (
		reqID    = "client-req-42"
		traceID  = "0af7651916cd43dd8448eb211c80319c"
		clientSp = "b7ad6b7169203331"
	)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/findall?q=acgtacg", nil)
	req.Header.Set("X-Request-Id", reqID)
	req.Header.Set("traceparent", "00-"+traceID+"-"+clientSp+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Fatalf("X-Request-Id echo = %q, want %q", got, reqID)
	}
	echo, ok := obs.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q did not parse", resp.Header.Get("traceparent"))
	}
	if echo.TraceID.String() != traceID {
		t.Fatalf("response switched trace: %s, want %s", echo.TraceID, traceID)
	}
	if echo.SpanID.String() == clientSp {
		t.Fatal("server reused the client's span id instead of minting its own")
	}

	evs := flushEvents(t, app, sink)
	queries := eventsOfType(evs, obs.EventQuery)
	if len(queries) != 1 {
		t.Fatalf("got %d query events, want 1", len(queries))
	}
	q := queries[0]
	if q.RequestID != reqID || q.TraceID != traceID {
		t.Fatalf("query event lost correlation: %+v", q)
	}
	if q.ParentSpanID != clientSp {
		t.Fatalf("query event parent = %q, want the client span %q", q.ParentSpanID, clientSp)
	}
	if q.SpanID != echo.SpanID.String() {
		t.Fatalf("query event span %q differs from the echoed traceparent span %q", q.SpanID, echo.SpanID)
	}

	legs := eventsOfType(evs, obs.EventShardLeg)
	if len(legs) == 0 {
		t.Fatal("no shard-leg events")
	}
	spans := map[string]bool{q.SpanID: true}
	for _, leg := range legs {
		if leg.RequestID != reqID || leg.TraceID != traceID {
			t.Fatalf("leg lost correlation: %+v", leg)
		}
		if leg.ParentSpanID != q.SpanID {
			t.Fatalf("leg %d parent = %q, want the query span %q", leg.Shard, leg.ParentSpanID, q.SpanID)
		}
		if leg.Shard < 0 {
			t.Fatalf("leg missing shard number: %+v", leg)
		}
		if spans[leg.SpanID] {
			t.Fatalf("span id %q reused across events", leg.SpanID)
		}
		spans[leg.SpanID] = true
	}
}

// TestStageTagExhaustiveness pins the three telemetry surfaces to the
// full stage vocabulary: every stage in trace.AllStages shows up in the
// Prometheus per-stage series, and a wide event carrying all stages
// serializes every tag. (trace's own unit test proves AllStages matches
// the Stage* constants by parsing the source.)
func TestStageTagExhaustiveness(t *testing.T) {
	reg := telemetry.NewRegistry()
	for _, st := range trace.AllStages {
		reg.Stage(st).Spans.Inc()
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, st := range trace.AllStages {
		want := fmt.Sprintf("spine_stage_spans_total{stage=%q} ", st)
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Prometheus exposition missing stage %q", st)
		}
	}

	ev := obs.Event{Type: obs.EventQuery}
	for _, st := range trace.AllStages {
		ev.Stages = append(ev.Stages, trace.StageSummary{Stage: st, Shard: -1})
	}
	blob, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range trace.AllStages {
		if !strings.Contains(string(blob), fmt.Sprintf("%q", st)) {
			t.Errorf("wide-event schema dropped stage %q", st)
		}
	}
}

// TestMetricsSurfacesObs verifies the ops surfaces carry the new
// telemetry: /metrics JSON embeds the exporter stats, the prom format
// gains spine_obs_* / spine_slo_* / spine_build_info, and /debug/dash
// answers with pipeline + RED + SLO state.
func TestMetricsSurfacesObs(t *testing.T) {
	app, ts, sink := obsApp(t, spine.Build([]byte("abracadabra")))
	resp, err := http.Get(ts.URL + "/v1/findall?q=abra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	flushEvents(t, app, sink)

	var snap struct {
		Obs           obs.PipelineStats `json:"obs"`
		Build         map[string]any    `json:"build"`
		StartTimeUnix float64           `json:"startTimeUnix"`
	}
	if r := getJSON(t, ts.URL+"/metrics", &snap); r.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", r.StatusCode)
	}
	if !snap.Obs.Enabled || snap.Obs.EmittedQuery < 1 {
		t.Fatalf("JSON snapshot obs stats = %+v", snap.Obs)
	}
	if snap.Obs.Dropped != 0 {
		t.Fatalf("dropped %d events in a quiet test", snap.Obs.Dropped)
	}
	if gv, _ := snap.Build["goVersion"].(string); gv == "" || snap.StartTimeUnix <= 0 {
		t.Fatalf("snapshot missing build info / start time: %+v", snap)
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"spine_build_info{",
		"spine_process_start_time_seconds ",
		`spine_obs_events_emitted_total{type="query"} `,
		"spine_obs_events_dropped_total 0",
		`spine_slo_objective{slo="availability"} 0.999`,
		`spine_slo_burn_rate{slo="latency",window="5m"} `,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom exposition missing %q\n%s", want, body)
		}
	}

	var dash obs.Dash
	if r := getJSON(t, ts.URL+"/debug/dash", &dash); r.StatusCode != http.StatusOK {
		t.Fatalf("/debug/dash status = %d", r.StatusCode)
	}
	if !dash.Pipeline.Enabled || len(dash.Series) == 0 || len(dash.SLO) == 0 {
		t.Fatalf("dash incomplete: %+v", dash)
	}
}

// TestRequestLogCarriesRequestID verifies the slog request line includes
// the correlation id (satellite: structured logging migration).
func TestRequestLogCarriesRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	sink := obs.NewCollectorSink()
	pipe := obs.NewPipeline(obs.Config{}, sink)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		pipe.Close(ctx)
	})
	cfg := defaultConfig()
	cfg.pipeline = pipe
	cfg.logger = slog.New(slog.NewJSONHandler(&logBuf, nil))
	app := newQueryServer(spine.Build([]byte("abracadabra")), cfg)
	ts := httptest.NewServer(app.mux())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/contains?q=abra", nil)
	req.Header.Set("X-Request-Id", "log-check-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var line struct {
		Msg       string `json:"msg"`
		RequestID string `json:"requestId"`
		Endpoint  string `json:"endpoint"`
		Status    int    `json:"status"`
	}
	found := false
	for _, raw := range bytes.Split(logBuf.Bytes(), []byte("\n")) {
		if len(raw) == 0 {
			continue
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("request log line is not JSON: %q", raw)
		}
		if line.Msg == "request" && line.Endpoint == "contains" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no request log line for the query; log:\n%s", logBuf.String())
	}
	if line.RequestID != "log-check-7" || line.Status != http.StatusOK {
		t.Fatalf("request line lost correlation: %+v", line)
	}
}

// TestSlowlogCarriesCorrelation verifies slowlog entries gained the
// request id and serving-source fields (satellite: slowlog enrichment).
func TestSlowlogCarriesCorrelation(t *testing.T) {
	cached, err := spine.Cached(spine.Build([]byte("abracadabra")), spine.CacheConfig{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewCollectorSink()
	pipe := obs.NewPipeline(obs.Config{}, sink)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		pipe.Close(ctx)
	})
	cfg := defaultConfig()
	cfg.slowlogThreshold = time.Nanosecond
	cfg.traceSample = 1
	cfg.pipeline = pipe
	app := newQueryServer(cached, cfg)
	ts := httptest.NewServer(app.mux())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/findall?q=abra", nil)
		req.Header.Set("X-Request-Id", fmt.Sprintf("slow-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	entries, _ := app.slowlog.Snapshot()
	if len(entries) != 2 {
		t.Fatalf("got %d slowlog entries, want 2", len(entries))
	}
	// Snapshot returns newest first or oldest first; identify by id.
	byID := map[string]trace.Entry{}
	for _, e := range entries {
		byID[e.RequestID] = e
	}
	first, ok := byID["slow-0"]
	if !ok {
		t.Fatalf("slowlog lost the request id: %+v", entries)
	}
	second := byID["slow-1"]
	if first.Source != "scan" {
		t.Fatalf("first query slowlog source = %q, want scan", first.Source)
	}
	if second.Source != "cache" {
		t.Fatalf("second query slowlog source = %q, want cache", second.Source)
	}
}
