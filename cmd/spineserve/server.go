package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	runtimepprof "runtime/pprof"
	"strconv"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// serverConfig tunes the robustness layer around the query handlers.
type serverConfig struct {
	// queryTimeout bounds each request's index work; expired deadlines
	// abort backbone scans mid-flight and map to 504.
	queryTimeout time.Duration
	// maxInFlight caps concurrently executing query requests; excess
	// load sheds with 429 + Retry-After. <= 0 disables the limiter.
	maxInFlight int
	// maxPatternLen caps the q parameter length (bytes).
	maxPatternLen int
	// maxBodyBytes caps the /match and /batch request bodies.
	maxBodyBytes int64
	// maxBatchPatterns caps the number of patterns one /batch request
	// may carry.
	maxBatchPatterns int
	// findAllCap is the largest (and default) /findall result limit.
	findAllCap int
	// slowlogThreshold is the request duration at or above which a traced
	// query is retained in the slow-query ring; <= 0 disables the log.
	slowlogThreshold time.Duration
	// slowlogSize is the slow-query ring capacity.
	slowlogSize int
	// traceSample traces 1 in N query requests (1 = every query, 0 =
	// never). Untraced queries pay one context lookup and nothing else.
	traceSample int
	logger      *log.Logger
}

func defaultConfig() serverConfig {
	return serverConfig{
		queryTimeout:     10 * time.Second,
		maxInFlight:      64,
		maxPatternLen:    1 << 20,
		maxBodyBytes:     256 << 20,
		maxBatchPatterns: 256,
		findAllCap:       10000,
		slowlogThreshold: 250 * time.Millisecond,
		slowlogSize:      128,
		traceSample:      1,
		logger:           log.New(io.Discard, "", 0),
	}
}

// server wraps any spine.Querier with instrumented, hardened HTTP
// handlers. Optional capabilities (stats, maximal matching, approximate
// search) are discovered by interface assertion, so the same server
// fronts reference, compact and sharded indexes.
type server struct {
	q       spine.Querier
	reg     *telemetry.Registry
	cfg     serverConfig
	sem     chan struct{} // concurrency limiter; nil when disabled
	sampler *trace.Sampler
	slowlog *trace.SlowLog // nil when the threshold disables it
}

// Optional capabilities beyond the Querier surface.
type (
	statser interface {
		Stats() spine.Stats
	}
	matcher interface {
		MaximalMatchesContext(ctx context.Context, query []byte, minLen int) ([]spine.Match, spine.MatchInfo, error)
	}
	approxer interface {
		FindAllWithin(p []byte, k int, model spine.Distance) []int
	}
)

func newQueryServer(q spine.Querier, cfg serverConfig) *server {
	if cfg.logger == nil {
		cfg.logger = log.New(io.Discard, "", 0)
	}
	s := &server{q: q, reg: telemetry.NewRegistry(), cfg: cfg}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	s.sampler = trace.NewSampler(cfg.traceSample)
	if cfg.slowlogThreshold > 0 {
		s.slowlog = trace.NewSlowLog(cfg.slowlogSize, cfg.slowlogThreshold)
	}
	s.reg.PublishExpvar("spine")
	return s
}

// mux wires every endpoint through the middleware stack. Query
// endpoints pass the concurrency limiter; operational endpoints
// (health, metrics, debug) bypass it so they stay reachable under
// saturation.
func (s *server) mux() http.Handler {
	m := http.NewServeMux()
	m.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	m.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	m.Handle("GET /stats", s.instrument("stats", false, s.handleStats))
	m.Handle("GET /contains", s.instrument("contains", true, s.handleContains))
	m.Handle("GET /find", s.instrument("find", true, s.handleFind))
	m.Handle("GET /findall", s.instrument("findall", true, s.handleFindAll))
	m.Handle("GET /count", s.instrument("count", true, s.handleCount))
	m.Handle("GET /approx", s.instrument("approx", true, s.handleApprox))
	m.Handle("POST /match", s.instrument("match", true, s.handleMatch))
	m.Handle("POST /batch", s.instrument("batch", true, s.handleBatch))
	m.Handle("GET /debug/slowlog", s.instrument("slowlog", false, s.handleSlowlog))
	m.Handle("GET /debug/vars", expvar.Handler())
	m.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to salvage mid-stream.
		return
	}
}

// statusFor maps a query error to its HTTP status: client errors
// (oversized patterns) are 4xx, expired deadlines 504, everything else
// 500. A cancelled context means the client went away — 503 records the
// abort without pretending the work finished.
func statusFor(err error) int {
	switch {
	case errors.Is(err, spine.ErrPatternTooLong), errors.Is(err, spine.ErrBadBatch):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *server) writeError(w http.ResponseWriter, err error) {
	http.Error(w, err.Error(), statusFor(err))
}

// pattern extracts and validates the q parameter.
func (s *server) pattern(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return nil, false
	}
	if len(q) > s.cfg.maxPatternLen {
		s.writeError(w, fmt.Errorf("%w: %d bytes exceeds the server's %d-byte cap",
			spine.ErrPatternTooLong, len(q), s.cfg.maxPatternLen))
		return nil, false
	}
	return []byte(q), true
}

// observePattern records the pattern length in the registry, stamps the
// fingerprint on the query's trace (if sampled), and labels the handler
// goroutine with a low-cardinality pattern-length bucket so CPU
// profiles split by query size. The middleware's pprof.Do restores the
// labels when the handler returns.
func (s *server) observePattern(r *http.Request, p []byte) {
	s.reg.Query.PatternLen.Observe(int64(len(p)))
	trace.FromContext(r.Context()).SetPattern(p)
	runtimepprof.SetGoroutineLabels(runtimepprof.WithLabels(r.Context(),
		runtimepprof.Labels("plen_bucket", plenBucket(len(p)))))
}

// plenBucket buckets a pattern length for pprof labels.
func plenBucket(n int) string {
	switch {
	case n <= 16:
		return "0-16"
	case n <= 64:
		return "17-64"
	case n <= 256:
		return "65-256"
	case n <= 1024:
		return "257-1024"
	default:
		return "1025+"
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "indexedChars": s.q.Len()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		if err := s.reg.WritePrometheus(w); err != nil {
			s.cfg.logger.Printf("metrics: prometheus write: %v", err)
		}
		return
	}
	writeJSON(w, s.reg.Snapshot())
}

func (s *server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	if s.slowlog == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	entries, total := s.slowlog.Snapshot()
	writeJSON(w, map[string]any{
		"enabled":     true,
		"thresholdUs": s.slowlog.Threshold().Microseconds(),
		"total":       total,
		"entries":     entries,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.q.(statser)
	if !ok {
		writeJSON(w, map[string]any{"length": s.q.Len()})
		return
	}
	stats := st.Stats()
	writeJSON(w, map[string]any{
		"length":      stats.Length,
		"ribs":        stats.RibCount,
		"extribs":     stats.ExtribCount,
		"maxLEL":      stats.MaxLEL,
		"maxPT":       stats.MaxPT,
		"memoryBytes": stats.MemoryBytes,
	})
}

func (s *server) handleContains(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	found, err := s.q.ContainsContext(r.Context(), p)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"contains": found})
}

func (s *server) handleFind(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	pos, err := s.q.FindContext(r.Context(), p)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"position": pos})
}

func (s *server) handleFindAll(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	limit := s.cfg.findAllCap
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		if n < limit {
			limit = n
		}
	}
	s.observePattern(r, p)
	res, err := s.q.FindAllLimitContext(r.Context(), p, limit)
	s.reg.Query.NodesChecked.Add(res.NodesChecked)
	tr := trace.FromContext(r.Context())
	tr.SetNodesChecked(res.NodesChecked)
	tr.SetTruncated(res.Truncated)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Query.Occurrences.Add(int64(len(res.Positions)))
	if res.Truncated {
		s.reg.Query.Truncated.Inc()
	}
	writeJSON(w, map[string]any{
		"count":     len(res.Positions),
		"positions": res.Positions,
		"truncated": res.Truncated,
	})
}

func (s *server) handleCount(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	n, err := s.q.CountContext(r.Context(), p)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Query.Occurrences.Add(int64(n))
	writeJSON(w, map[string]any{"count": n})
}

func (s *server) handleApprox(w http.ResponseWriter, r *http.Request) {
	ap, capOK := s.q.(approxer)
	if !capOK {
		http.Error(w, "approximate search is not supported by this index type", http.StatusNotImplemented)
		return
	}
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 3 {
			http.Error(w, "bad k (0..3)", http.StatusBadRequest)
			return
		}
		k = n
	}
	model := spine.Hamming
	switch r.URL.Query().Get("model") {
	case "", "hamming":
	case "edit":
		model = spine.Edit
	default:
		http.Error(w, "bad model (hamming|edit)", http.StatusBadRequest)
		return
	}
	s.observePattern(r, p)
	positions := ap.FindAllWithin(p, k, model)
	s.reg.Query.Occurrences.Add(int64(len(positions)))
	writeJSON(w, map[string]any{"positions": positions})
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	mt, capOK := s.q.(matcher)
	if !capOK {
		http.Error(w, "maximal matching is not supported by this index type", http.StatusNotImplemented)
		return
	}
	minLen := 20
	if v := r.URL.Query().Get("minlen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad minlen", http.StatusBadRequest)
			return
		}
		minLen = n
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, "query sequence too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	if len(body) == 0 {
		http.Error(w, "empty query sequence", http.StatusBadRequest)
		return
	}
	s.observePattern(r, body)
	matches, info, err := mt.MaximalMatchesContext(r.Context(), body, minLen)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.reg.Query.NodesChecked.Add(info.NodesChecked)
	trace.FromContext(r.Context()).SetNodesChecked(info.NodesChecked)
	s.reg.Query.Occurrences.Add(int64(info.Pairs))
	writeJSON(w, map[string]any{
		"matches":      matches,
		"pairs":        info.Pairs,
		"nodesChecked": info.NodesChecked,
		"elapsedNs":    info.Elapsed.Nanoseconds(),
	})
}

// batchItem is one per-pattern entry in a /batch response. Items keep
// their request order; status distinguishes answered items ("ok") from
// individually rejected ones ("error", with the reason in error).
type batchItem struct {
	Status       string `json:"status"`
	Count        int    `json:"count"`
	Positions    []int  `json:"positions"`
	Truncated    bool   `json:"truncated"`
	NodesChecked int64  `json:"nodesChecked"`
	Error        string `json:"error,omitempty"`
}

// handleBatch answers a multi-pattern query with one engine batch: all
// descents pooled, all occurrence lists resolved by a single backbone
// scan per index (per shard in sharded mode). The body is either a bare
// JSON array of patterns or {"patterns": [...], "limit": N}. The limit
// applies per item and is capped at the /findall cap. Oversized
// patterns fail alone with a per-item error; the batch answers.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, "batch body too large", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "reading body", http.StatusBadRequest)
		return
	}
	var req struct {
		Patterns []string `json:"patterns"`
		Limit    int      `json:"limit"`
	}
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &req.Patterns)
	} else {
		err = json.Unmarshal(trimmed, &req)
	}
	if err != nil {
		http.Error(w, "bad batch body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Patterns) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}
	if len(req.Patterns) > s.cfg.maxBatchPatterns {
		http.Error(w, fmt.Sprintf("batch of %d patterns exceeds the server's %d-pattern cap",
			len(req.Patterns), s.cfg.maxBatchPatterns), http.StatusBadRequest)
		return
	}
	if req.Limit < 0 {
		http.Error(w, "bad limit", http.StatusBadRequest)
		return
	}
	limit := s.cfg.findAllCap
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}

	// Server-side validation happens before the engine sees the batch:
	// oversized patterns become per-item errors and are excluded from the
	// engine call, so one hostile item cannot sink its neighbors.
	items := make([]batchItem, len(req.Patterns))
	pats := make([][]byte, 0, len(req.Patterns))
	fromEngine := make([]int, 0, len(req.Patterns)) // engine position -> request position
	unique := make(map[string]struct{}, len(req.Patterns))
	for i, ps := range req.Patterns {
		unique[ps] = struct{}{}
		if len(ps) > s.cfg.maxPatternLen {
			items[i] = batchItem{Status: "error", Error: fmt.Sprintf("%v: %d bytes exceeds the server's %d-byte cap",
				spine.ErrPatternTooLong, len(ps), s.cfg.maxPatternLen)}
			s.reg.Batch.RejectedItems.Inc()
			continue
		}
		s.reg.Query.PatternLen.Observe(int64(len(ps)))
		pats = append(pats, []byte(ps))
		fromEngine = append(fromEngine, i)
	}
	s.reg.Batch.Batches.Inc()
	s.reg.Batch.Patterns.Add(int64(len(req.Patterns)))
	s.reg.Batch.Size.Observe(int64(len(req.Patterns)))
	s.reg.Batch.Deduped.Add(int64(len(req.Patterns) - len(unique)))
	trace.FromContext(r.Context()).SetPattern(bytes.Join(pats, []byte{0x1f}))

	results, err := s.q.QueryBatch(r.Context(), pats, spine.BatchOptions{Limit: limit})
	if err != nil {
		s.writeError(w, err)
		return
	}
	var nodes, occurrences int64
	for k, res := range results {
		i := fromEngine[k]
		nodes += res.NodesChecked
		if res.Err != nil {
			items[i] = batchItem{Status: "error", Error: res.Err.Error()}
			s.reg.Batch.RejectedItems.Inc()
			continue
		}
		if res.Truncated {
			s.reg.Query.Truncated.Inc()
		}
		occurrences += int64(len(res.Positions))
		pos := res.Positions
		if pos == nil {
			pos = []int{}
		}
		items[i] = batchItem{
			Status:       "ok",
			Count:        len(res.Positions),
			Positions:    pos,
			Truncated:    res.Truncated,
			NodesChecked: res.NodesChecked,
		}
	}
	s.reg.Query.NodesChecked.Add(nodes)
	s.reg.Query.Occurrences.Add(occurrences)
	trace.FromContext(r.Context()).SetNodesChecked(nodes)
	writeJSON(w, map[string]any{
		"patterns": len(req.Patterns),
		"unique":   len(unique),
		"limit":    limit,
		"results":  items,
	})
}
