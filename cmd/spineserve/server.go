package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	runtimepprof "runtime/pprof"
	"strconv"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/telemetry"
	"github.com/spine-index/spine/internal/trace"
)

// serverConfig tunes the robustness layer around the query handlers.
type serverConfig struct {
	// queryTimeout bounds each request's index work; expired deadlines
	// abort backbone scans mid-flight and map to 504.
	queryTimeout time.Duration
	// maxInFlight caps concurrently executing query requests; excess
	// load sheds with 429 + Retry-After. <= 0 disables the limiter.
	maxInFlight int
	// maxPatternLen caps the q parameter length (bytes).
	maxPatternLen int
	// maxBodyBytes caps the /match and /batch request bodies.
	maxBodyBytes int64
	// maxBatchPatterns caps the number of patterns one /batch request
	// may carry.
	maxBatchPatterns int
	// findAllCap is the largest (and default) /findall result limit.
	findAllCap int
	// slowlogThreshold is the request duration at or above which a traced
	// query is retained in the slow-query ring; <= 0 disables the log.
	slowlogThreshold time.Duration
	// slowlogSize is the slow-query ring capacity.
	slowlogSize int
	// traceSample traces 1 in N query requests (1 = every query, 0 =
	// never). Untraced queries pay one context lookup and nothing else.
	traceSample int
	logger      *slog.Logger
	// pipeline, when set, receives one wide event per query (plus
	// batch-item and shard-leg events) and powers /debug/dash; nil turns
	// the wide-event layer off entirely.
	pipeline *obs.Pipeline
	// slo, when set, computes burn rates over the pipeline's RED rollup
	// for /debug/dash and the spine_slo_* Prometheus families.
	slo *obs.SLO
}

func defaultConfig() serverConfig {
	return serverConfig{
		queryTimeout:     10 * time.Second,
		maxInFlight:      64,
		maxPatternLen:    1 << 20,
		maxBodyBytes:     256 << 20,
		maxBatchPatterns: 256,
		findAllCap:       10000,
		slowlogThreshold: 250 * time.Millisecond,
		slowlogSize:      128,
		traceSample:      1,
		logger:           slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

// server wraps any spine.Querier with instrumented, hardened HTTP
// handlers. Optional capabilities (stats, maximal matching, approximate
// search, cache counters) are discovered by interface assertion —
// descending through decorator Unwrap chains — so the same server
// fronts reference, compact and sharded indexes, cached or not.
type server struct {
	q       spine.Querier
	reg     *telemetry.Registry
	cfg     serverConfig
	sem     chan struct{} // concurrency limiter; nil when disabled
	sampler *trace.Sampler
	slowlog *trace.SlowLog // nil when the threshold disables it
	pipe    *obs.Pipeline  // nil-safe: every obs call no-ops when unset
	slo     *obs.SLO
	// hasCache gates the per-endpoint hit/miss attribution: without a
	// Cached querier in the chain every result is a scan and counting
	// "misses" would be noise.
	hasCache bool
}

// Optional capabilities beyond the Querier surface.
type (
	statser interface {
		Stats() spine.Stats
	}
	matcher interface {
		MaximalMatchesContext(ctx context.Context, query []byte, minLen int) ([]spine.Match, spine.MatchInfo, error)
	}
	approxer interface {
		FindAllWithin(p []byte, k int, model spine.Distance) []int
	}
	cacheStatser interface {
		CacheStats() spine.CacheStats
	}
	diskStatser interface {
		DiskStats() spine.DiskStats
	}
)

// capability resolves an optional interface on q, descending through
// decorator Unwrap chains (the result cache wraps the index; the
// index's capabilities must stay visible through it).
func capability[T any](q spine.Querier) (T, bool) {
	for {
		if t, ok := q.(T); ok {
			return t, true
		}
		u, ok := q.(interface{ Unwrap() spine.Querier })
		if !ok {
			var zero T
			return zero, false
		}
		q = u.Unwrap()
	}
}

func newQueryServer(q spine.Querier, cfg serverConfig) *server {
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{q: q, reg: telemetry.NewRegistry(), cfg: cfg, pipe: cfg.pipeline, slo: cfg.slo}
	if cfg.maxInFlight > 0 {
		s.sem = make(chan struct{}, cfg.maxInFlight)
	}
	s.sampler = trace.NewSampler(cfg.traceSample)
	if cfg.slowlogThreshold > 0 {
		s.slowlog = trace.NewSlowLog(cfg.slowlogSize, cfg.slowlogThreshold)
	}
	if cs, ok := capability[cacheStatser](q); ok {
		s.hasCache = true
		s.reg.SetCacheSource(func() telemetry.CacheSnapshot {
			st := cs.CacheStats()
			return telemetry.CacheSnapshot{
				Hits:           st.Hits,
				Misses:         st.Misses,
				NegRejects:     st.NegRejects,
				NegFalsePos:    st.NegFalsePos,
				Entries:        st.Entries,
				Bytes:          st.Bytes,
				Evictions:      st.Evictions,
				Epoch:          st.Epoch,
				NegFilterQ:     st.NegFilterQ,
				NegFilterBytes: st.NegFilterBytes,
			}
		})
	}
	if ds, ok := capability[diskStatser](q); ok {
		s.reg.SetDiskSource(func() telemetry.DiskSnapshot {
			st := ds.DiskStats()
			return telemetry.DiskSnapshot{
				Mode:              st.Mode,
				FileBytes:         st.FileBytes,
				MappedBytes:       st.MappedBytes,
				ResidentBytes:     st.ResidentBytes,
				WarmedBytes:       st.WarmedBytes,
				ReadaheadIssued:   st.ReadaheadIssued,
				ReadaheadHits:     st.ReadaheadHits,
				ReadaheadBytes:    st.ReadaheadBytes,
				RangeCacheEvicted: st.RangeCacheEvicted,
				OpenSeconds:       float64(st.OpenNanos) / 1e9,
			}
		})
	}
	s.reg.SetScanKernelInfo(telemetry.ScanKernelInfo{
		Kernel: core.ActiveScanKernel().String(),
		ISA:    core.ScanKernelISA(),
	})
	s.reg.PublishExpvar("spine")
	return s
}

// mux wires every endpoint through the middleware stack. Query
// endpoints live under /v1/ and pass the concurrency limiter; each
// also keeps its original unversioned path as a deprecated alias
// (same handler, same metrics, plus Deprecation/Link headers).
// Operational endpoints (health, metrics, debug) stay unversioned and
// bypass the limiter so they remain reachable under saturation.
func (s *server) mux() http.Handler {
	m := http.NewServeMux()
	m.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	m.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	m.Handle("GET /stats", s.instrument("stats", false, s.handleStats))
	for _, ep := range []struct {
		method, name string
		h            http.HandlerFunc
	}{
		{"GET", "contains", s.handleContains},
		{"GET", "find", s.handleFind},
		{"GET", "findall", s.handleFindAll},
		{"GET", "count", s.handleCount},
		{"GET", "approx", s.handleApprox},
		{"POST", "match", s.handleMatch},
		{"POST", "batch", s.handleBatch},
	} {
		h := s.instrument(ep.name, true, ep.h)
		m.Handle(ep.method+" /v1/"+ep.name, h)
		m.Handle(ep.method+" /"+ep.name, deprecatedAlias(ep.name, h))
	}
	m.Handle("GET /debug/slowlog", s.instrument("slowlog", false, s.handleSlowlog))
	m.Handle("GET /debug/dash", s.instrument("dash", false, s.handleDash))
	m.Handle("GET /debug/vars", expvar.Handler())
	m.HandleFunc("GET /debug/pprof/", pprof.Index)
	m.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	m.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return m
}

// deprecatedAlias serves an unversioned query path with deprecation
// headers (RFC 8594-style) pointing clients at the /v1/ successor.
func deprecatedAlias(name string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/`+name+`>; rel="successor-version"`)
		h.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are gone; nothing to salvage mid-stream.
		return
	}
}

// apiError is the unified error object every endpoint returns:
// {"error": {"code": "...", "message": "..."}}. code is a stable
// machine-readable slug; message is human-readable detail.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Stable error codes of the HTTP surface.
const (
	codeBadRequest     = "bad_request"
	codePatternTooLong = "pattern_too_long"
	codeTooLarge       = "too_large"
	codeTimeout        = "timeout"
	codeCanceled       = "canceled"
	codeUnsupported    = "unsupported"
	codeSaturated      = "too_many_requests"
	codeInternal       = "internal"
)

// writeAPIError emits the unified error envelope with the given status.
func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]apiError{"error": {Code: code, Message: msg}})
}

// statusFor maps a query error to its HTTP status: client errors
// (oversized patterns, malformed batches) are 4xx, expired deadlines
// 504, everything else 500. A cancelled context means the client went
// away — 503 records the abort without pretending the work finished.
func statusFor(err error) int {
	switch {
	case errors.Is(err, spine.ErrPatternTooLong),
		errors.Is(err, spine.ErrBadBatch),
		errors.Is(err, spine.ErrBadQueryKind):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// codeFor maps a query error to its stable error code.
func codeFor(err error) string {
	switch {
	case errors.Is(err, spine.ErrPatternTooLong):
		return codePatternTooLong
	case errors.Is(err, spine.ErrBadBatch), errors.Is(err, spine.ErrBadQueryKind):
		return codeBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return codeTimeout
	case errors.Is(err, context.Canceled):
		return codeCanceled
	default:
		return codeInternal
	}
}

// fail writes the unified error envelope and stamps the stable code on
// the request's wide event, so exported events carry the same slug the
// client saw.
func (s *server) fail(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	obs.FromContext(r.Context()).SetError(code)
	writeAPIError(w, status, code, msg)
}

func (s *server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	s.fail(w, r, statusFor(err), codeFor(err), err.Error())
}

// pattern extracts and validates the q parameter.
func (s *server) pattern(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "missing q parameter")
		return nil, false
	}
	if len(q) > s.cfg.maxPatternLen {
		s.writeError(w, r, fmt.Errorf("%w: %d bytes exceeds the server's %d-byte cap",
			spine.ErrPatternTooLong, len(q), s.cfg.maxPatternLen))
		return nil, false
	}
	return []byte(q), true
}

// observePattern records the pattern length in the registry, stamps the
// fingerprint on the query's trace (if sampled), and labels the handler
// goroutine with a low-cardinality pattern-length bucket so CPU
// profiles split by query size. The middleware's pprof.Do restores the
// labels when the handler returns.
func (s *server) observePattern(r *http.Request, p []byte) {
	s.reg.Query.PatternLen.Observe(int64(len(p)))
	trace.FromContext(r.Context()).SetPattern(p)
	obs.FromContext(r.Context()).SetPattern(trace.FingerprintOf(p))
	runtimepprof.SetGoroutineLabels(runtimepprof.WithLabels(r.Context(),
		runtimepprof.Labels("plen_bucket", plenBucket(len(p)))))
}

// observeSource attributes a result's provenance to the endpoint: a
// cache hit or negative-filter rejection counts as a cache hit (the
// request did no index work), a scan as a miss. No-op on servers
// running without a cache.
func (s *server) observeSource(name string, src spine.ResultSource) {
	if !s.hasCache {
		return
	}
	ep := s.reg.Endpoint(name)
	if src == spine.SourceScan {
		ep.CacheMisses.Inc()
	} else {
		ep.CacheHits.Inc()
	}
}

// observeResult stamps a successful query's outcome everywhere it is
// reported: the endpoint's cache hit/miss counters, the trace (so slow
// log entries name their source), and the request's wide event.
func (s *server) observeResult(r *http.Request, name string, res spine.QueryResult, resultCount int) {
	s.observeSource(name, res.Source)
	src := res.Source.String()
	trace.FromContext(r.Context()).SetSource(src)
	obs.FromContext(r.Context()).SetOutcome(obs.Outcome{
		Source:       src,
		NodesChecked: res.NodesChecked,
		ResultCount:  resultCount,
		Truncated:    res.Truncated,
	})
}

// plenBucket buckets a pattern length for pprof labels.
func plenBucket(n int) string {
	switch {
	case n <= 16:
		return "0-16"
	case n <= 64:
		return "17-64"
	case n <= 256:
		return "65-256"
	case n <= 1024:
		return "257-1024"
	default:
		return "1025+"
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "indexedChars": s.q.Len()})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		if err := s.reg.WritePrometheus(w); err != nil {
			s.cfg.logger.Error("metrics: prometheus write", slog.Any("err", err))
			return
		}
		obs.WritePrometheus(w, s.pipe.Stats(), s.slo)
		return
	}
	writeJSON(w, struct {
		telemetry.Snapshot
		Obs obs.PipelineStats `json:"obs"`
	}{s.reg.Snapshot(), s.pipe.Stats()})
}

// handleDash serves the observability dashboard JSON: pipeline health,
// the multi-resolution RED rollups per endpoint×kind, and the SLO
// burn-rate evaluation.
func (s *server) handleDash(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, obs.BuildDash(s.pipe, s.slo))
}

func (s *server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	if s.slowlog == nil {
		writeJSON(w, map[string]any{"enabled": false})
		return
	}
	entries, total := s.slowlog.Snapshot()
	writeJSON(w, map[string]any{
		"enabled":     true,
		"thresholdUs": s.slowlog.Threshold().Microseconds(),
		"total":       total,
		"entries":     entries,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st, ok := capability[statser](s.q)
	if !ok {
		writeJSON(w, map[string]any{"length": s.q.Len()})
		return
	}
	stats := st.Stats()
	writeJSON(w, map[string]any{
		"length":      stats.Length,
		"ribs":        stats.RibCount,
		"extribs":     stats.ExtribCount,
		"maxLEL":      stats.MaxLEL,
		"maxPT":       stats.MaxPT,
		"memoryBytes": stats.MemoryBytes,
	})
}

func (s *server) handleContains(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	obs.FromContext(r.Context()).SetQuery(spine.KindContains.String(), 0)
	res, err := s.q.Query(r.Context(), p, spine.QueryOptions{Kind: spine.KindContains})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	found := 0
	if res.Found {
		found = 1
	}
	s.observeResult(r, "contains", res, found)
	s.reg.Query.NodesChecked.Add(res.NodesChecked)
	writeJSON(w, map[string]any{"contains": res.Found})
}

func (s *server) handleFind(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	obs.FromContext(r.Context()).SetQuery(spine.KindFind.String(), 0)
	res, err := s.q.Query(r.Context(), p, spine.QueryOptions{Kind: spine.KindFind})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	found := 0
	if res.Found {
		found = 1
	}
	s.observeResult(r, "find", res, found)
	s.reg.Query.NodesChecked.Add(res.NodesChecked)
	writeJSON(w, map[string]any{"position": res.Position})
}

func (s *server) handleFindAll(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	limit := s.cfg.findAllCap
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad limit")
			return
		}
		if n < limit {
			limit = n
		}
	}
	s.observePattern(r, p)
	obs.FromContext(r.Context()).SetQuery(spine.KindFindAll.String(), limit)
	res, err := s.q.Query(r.Context(), p, spine.QueryOptions{Kind: spine.KindFindAll, Limit: limit})
	s.reg.Query.NodesChecked.Add(res.NodesChecked)
	tr := trace.FromContext(r.Context())
	tr.SetNodesChecked(res.NodesChecked)
	tr.SetTruncated(res.Truncated)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.observeResult(r, "findall", res, len(res.Positions))
	s.reg.Query.Occurrences.Add(int64(len(res.Positions)))
	if res.Truncated {
		s.reg.Query.Truncated.Inc()
	}
	writeJSON(w, map[string]any{
		"count":     len(res.Positions),
		"positions": res.Positions,
		"truncated": res.Truncated,
	})
}

func (s *server) handleCount(w http.ResponseWriter, r *http.Request) {
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	s.observePattern(r, p)
	obs.FromContext(r.Context()).SetQuery(spine.KindCount.String(), 0)
	res, err := s.q.Query(r.Context(), p, spine.QueryOptions{Kind: spine.KindCount})
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.observeResult(r, "count", res, res.Count)
	s.reg.Query.NodesChecked.Add(res.NodesChecked)
	s.reg.Query.Occurrences.Add(int64(res.Count))
	writeJSON(w, map[string]any{"count": res.Count})
}

func (s *server) handleApprox(w http.ResponseWriter, r *http.Request) {
	ap, capOK := capability[approxer](s.q)
	if !capOK {
		s.fail(w, r, http.StatusNotImplemented, codeUnsupported,
			"approximate search is not supported by this index type")
		return
	}
	p, ok := s.pattern(w, r)
	if !ok {
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 3 {
			s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad k (0..3)")
			return
		}
		k = n
	}
	model := spine.Hamming
	switch r.URL.Query().Get("model") {
	case "", "hamming":
	case "edit":
		model = spine.Edit
	default:
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad model (hamming|edit)")
		return
	}
	s.observePattern(r, p)
	obs.FromContext(r.Context()).SetQuery("approx", k)
	positions := ap.FindAllWithin(p, k, model)
	s.reg.Query.Occurrences.Add(int64(len(positions)))
	obs.FromContext(r.Context()).SetOutcome(obs.Outcome{Source: "scan", ResultCount: len(positions)})
	writeJSON(w, map[string]any{"positions": positions})
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	mt, capOK := capability[matcher](s.q)
	if !capOK {
		s.fail(w, r, http.StatusNotImplemented, codeUnsupported,
			"maximal matching is not supported by this index type")
		return
	}
	minLen := 20
	if v := r.URL.Query().Get("minlen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad minlen")
			return
		}
		minLen = n
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "query sequence too large")
			return
		}
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "reading body")
		return
	}
	if len(body) == 0 {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "empty query sequence")
		return
	}
	s.observePattern(r, body)
	obs.FromContext(r.Context()).SetQuery("match", minLen)
	matches, info, err := mt.MaximalMatchesContext(r.Context(), body, minLen)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.reg.Query.NodesChecked.Add(info.NodesChecked)
	trace.FromContext(r.Context()).SetNodesChecked(info.NodesChecked)
	s.reg.Query.Occurrences.Add(int64(info.Pairs))
	obs.FromContext(r.Context()).SetOutcome(obs.Outcome{
		Source: "scan", NodesChecked: info.NodesChecked, ResultCount: info.Pairs,
	})
	writeJSON(w, map[string]any{
		"matches":      matches,
		"pairs":        info.Pairs,
		"nodesChecked": info.NodesChecked,
		"elapsedNs":    info.Elapsed.Nanoseconds(),
	})
}

// batchItem is one per-pattern entry in a /batch response. Items keep
// their request order; status distinguishes answered items ("ok") from
// individually rejected ones ("error", with the unified error object
// in error).
type batchItem struct {
	Status       string    `json:"status"`
	Count        int       `json:"count"`
	Positions    []int     `json:"positions"`
	Truncated    bool      `json:"truncated"`
	NodesChecked int64     `json:"nodesChecked"`
	Error        *apiError `json:"error,omitempty"`
}

// handleBatch answers a multi-pattern query with one engine batch: all
// descents pooled, all occurrence lists resolved by a single backbone
// scan per index (per shard in sharded mode). The body is either a bare
// JSON array of patterns or {"patterns": [...], "limit": N}. The limit
// applies per item and is capped at the /findall cap. Oversized
// patterns fail alone with a per-item error; the batch answers.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.fail(w, r, http.StatusRequestEntityTooLarge, codeTooLarge, "batch body too large")
			return
		}
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "reading body")
		return
	}
	var req struct {
		Patterns []string `json:"patterns"`
		Limit    int      `json:"limit"`
	}
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &req.Patterns)
	} else {
		err = json.Unmarshal(trimmed, &req)
	}
	if err != nil {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(req.Patterns) == 0 {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "empty batch")
		return
	}
	if len(req.Patterns) > s.cfg.maxBatchPatterns {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("batch of %d patterns exceeds the server's %d-pattern cap",
				len(req.Patterns), s.cfg.maxBatchPatterns))
		return
	}
	if req.Limit < 0 {
		s.fail(w, r, http.StatusBadRequest, codeBadRequest, "bad limit")
		return
	}
	limit := s.cfg.findAllCap
	if req.Limit > 0 && req.Limit < limit {
		limit = req.Limit
	}
	qc := obs.FromContext(r.Context())
	qc.SetQuery("batch", limit)

	// Server-side validation happens before the engine sees the batch:
	// oversized patterns become per-item errors and are excluded from the
	// engine call, so one hostile item cannot sink its neighbors.
	items := make([]batchItem, len(req.Patterns))
	pats := make([][]byte, 0, len(req.Patterns))
	fromEngine := make([]int, 0, len(req.Patterns)) // engine position -> request position
	unique := make(map[string]struct{}, len(req.Patterns))
	for i, ps := range req.Patterns {
		unique[ps] = struct{}{}
		if len(ps) > s.cfg.maxPatternLen {
			items[i] = batchItem{Status: "error", Error: &apiError{
				Code: codePatternTooLong,
				Message: fmt.Sprintf("%v: %d bytes exceeds the server's %d-byte cap",
					spine.ErrPatternTooLong, len(ps), s.cfg.maxPatternLen),
			}}
			s.reg.Batch.RejectedItems.Inc()
			continue
		}
		s.reg.Query.PatternLen.Observe(int64(len(ps)))
		pats = append(pats, []byte(ps))
		fromEngine = append(fromEngine, i)
	}
	s.reg.Batch.Batches.Inc()
	s.reg.Batch.Patterns.Add(int64(len(req.Patterns)))
	s.reg.Batch.Size.Observe(int64(len(req.Patterns)))
	s.reg.Batch.Deduped.Add(int64(len(req.Patterns) - len(unique)))
	trace.FromContext(r.Context()).SetPattern(bytes.Join(pats, []byte{0x1f}))

	engineStart := time.Now()
	results, err := s.q.QueryBatch(r.Context(), pats, spine.BatchOptions{Limit: limit})
	engineElapsed := time.Since(engineStart)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	sources := make([]string, len(req.Patterns))
	var nodes, occurrences int64
	for k, res := range results {
		i := fromEngine[k]
		nodes += res.NodesChecked
		sources[i] = res.Source.String()
		if res.Err != nil {
			items[i] = batchItem{Status: "error", Error: &apiError{
				Code:    codeFor(res.Err),
				Message: res.Err.Error(),
			}}
			s.reg.Batch.RejectedItems.Inc()
			continue
		}
		s.observeSource("batch", res.Source)
		if res.Truncated {
			s.reg.Query.Truncated.Inc()
		}
		occurrences += int64(len(res.Positions))
		pos := res.Positions
		if pos == nil {
			pos = []int{}
		}
		items[i] = batchItem{
			Status:       "ok",
			Count:        len(res.Positions),
			Positions:    pos,
			Truncated:    res.Truncated,
			NodesChecked: res.NodesChecked,
		}
	}
	s.reg.Query.NodesChecked.Add(nodes)
	s.reg.Query.Occurrences.Add(occurrences)
	trace.FromContext(r.Context()).SetNodesChecked(nodes)
	trace.FromContext(r.Context()).SetSource("scan")

	// The batch is covered by per-item events (one per request item, all
	// children of this request's span), so the request-level query event
	// is suppressed. Engine time is amortized evenly across the items the
	// engine actually ran; rejected items never reached it and report 0.
	if qc != nil {
		qc.SuppressQueryEvent()
		var perItemUs int64
		if len(results) > 0 {
			perItemUs = engineElapsed.Microseconds() / int64(len(results))
		}
		for i, ps := range req.Patterns {
			it := items[i]
			var errCode string
			durUs := perItemUs
			if it.Error != nil {
				errCode = it.Error.Code
				if errCode == codePatternTooLong {
					durUs = 0 // rejected before the engine ran
				}
			}
			qc.EmitBatchItem(i, trace.FingerprintOf([]byte(ps)), limit, obs.Outcome{
				Source:       sources[i],
				NodesChecked: it.NodesChecked,
				ResultCount:  it.Count,
				Truncated:    it.Truncated,
			}, errCode, durUs)
		}
	}
	writeJSON(w, map[string]any{
		"patterns": len(req.Patterns),
		"unique":   len(unique),
		"limit":    limit,
		"results":  items,
	})
}
