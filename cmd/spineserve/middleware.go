package main

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the full middleware stack, outermost
// first: panic recovery, metrics + structured logging, the concurrency
// limiter (query endpoints only), and the per-request query deadline.
func (s *server) instrument(name string, limited bool, h http.HandlerFunc) http.Handler {
	ep := s.reg.Endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		ep.InFlight.Inc()
		defer func() {
			ep.InFlight.Dec()
			// Panic recovery: convert to 500, log the stack, keep serving.
			if rec := recover(); rec != nil {
				s.cfg.logger.Printf("panic endpoint=%s err=%v\n%s", name, rec, debug.Stack())
				if sr.status == 0 {
					http.Error(sr, "internal server error", http.StatusInternalServerError)
				}
			}
			if sr.status == 0 {
				sr.status = http.StatusOK // nothing written: net/http sends 200
			}
			elapsed := time.Since(start)
			ep.ObserveRequest(sr.status, elapsed)
			s.cfg.logger.Printf("method=%s path=%s endpoint=%s status=%d durUs=%d bytes=%d",
				r.Method, r.URL.Path, name, sr.status, elapsed.Microseconds(), sr.bytes)
		}()

		if limited && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				// Saturated: shed load instead of queueing unboundedly.
				sr.Header().Set("Retry-After", "1")
				http.Error(sr, "server saturated, retry later", http.StatusTooManyRequests)
				return
			}
		}

		if limited && s.cfg.queryTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.queryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(sr, r)
	})
}
