package main

import (
	"context"
	"log/slog"
	"net/http"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/trace"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the full middleware stack, outermost
// first: panic recovery, request correlation (X-Request-Id and W3C
// traceparent ingest/echo), metrics + structured logging, the
// concurrency limiter (query endpoints only), the per-request query
// deadline, and — for sampled query requests — a per-query trace whose
// spans feed the per-stage/per-shard registry series and the slow-query
// log. Query endpoints additionally emit one wide event per request
// (deferred, after the handler finishes annotating it). The handler
// goroutine carries a pprof endpoint label so CPU profiles split by
// route.
func (s *server) instrument(name string, limited bool, h http.HandlerFunc) http.Handler {
	ep := s.reg.Endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}

		// Correlation: adopt the client's X-Request-Id when it is sane,
		// mint one otherwise, and echo it on every response (including
		// 429s and panics) so the client can always quote it.
		reqID, ok := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if !ok {
			reqID = obs.NewRequestID()
		}
		sr.Header().Set("X-Request-Id", reqID)

		// Query endpoints open a wide-event scope; the incoming
		// traceparent (if well-formed) is continued, and the response
		// echoes this server's own span so the caller can parent on it.
		var qc *obs.QueryCtx
		if limited {
			incoming, _ := obs.ParseTraceParent(r.Header.Get("traceparent"))
			qc = obs.Begin(s.pipe, name, reqID, incoming)
			if qc != nil {
				sr.Header().Set("traceparent", qc.TraceParent().Header())
			}
		}

		var tr *trace.Trace
		ep.InFlight.Inc()
		defer func() {
			ep.InFlight.Dec()
			// Panic recovery: convert to 500, log the stack, keep serving.
			if rec := recover(); rec != nil {
				s.cfg.logger.Error("panic",
					slog.String("endpoint", name),
					slog.String("requestId", reqID),
					slog.Any("err", rec),
					slog.String("stack", string(debug.Stack())))
				qc.SetError(codeInternal)
				if sr.status == 0 {
					writeAPIError(sr, http.StatusInternalServerError, codeInternal, "internal server error")
				}
			}
			if sr.status == 0 {
				sr.status = http.StatusOK // nothing written: net/http sends 200
			}
			elapsed := time.Since(start)
			ep.ObserveRequest(sr.status, elapsed)
			s.observeTrace(tr, name, sr.status, start, elapsed)
			qc.EmitQuery(sr.status, start, elapsed, trace.Summarize(tr.Records()))
			s.cfg.logger.Info("request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("endpoint", name),
				slog.String("requestId", reqID),
				slog.Int("status", sr.status),
				slog.Int64("durUs", elapsed.Microseconds()),
				slog.Int64("bytes", sr.bytes))
		}()

		if limited && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				// Saturated: shed load instead of queueing unboundedly.
				qc.SetError(codeSaturated)
				sr.Header().Set("Retry-After", "1")
				writeAPIError(sr, http.StatusTooManyRequests, codeSaturated, "server saturated, retry later")
				return
			}
		}

		ctx := r.Context()
		if limited && s.cfg.queryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.queryTimeout)
			defer cancel()
		}
		if qc != nil {
			ctx = obs.NewContext(ctx, qc)
		}
		if limited && s.sampler.Sample() {
			tr = trace.New()
			tr.SetEndpoint(name)
			tr.SetRequestID(reqID)
			ctx = trace.NewContext(ctx, tr)
		}
		r = r.WithContext(ctx)
		// pprof.Do restores the goroutine's labels on return, which also
		// cleans up any labels handlers add (e.g. plen_bucket).
		pprof.Do(ctx, pprof.Labels("endpoint", name), func(context.Context) {
			h(sr, r)
		})
	})
}

// observeTrace folds a finished query's spans into the registry's
// per-stage and per-shard series and, past the threshold, appends the
// query to the slow log with its full breakdown.
func (s *server) observeTrace(tr *trace.Trace, name string, status int, start time.Time, elapsed time.Duration) {
	if tr == nil {
		return
	}
	for _, rec := range tr.Records() {
		st := s.reg.Stage(rec.Stage)
		st.Spans.Inc()
		st.Nanos.Add(rec.Duration.Nanoseconds())
		st.Nodes.Add(rec.Nodes)
		st.RibHops.Add(rec.RibHops)
		st.ExtribHops.Add(rec.ExtribHops)
		st.BlocksSkipped.Add(rec.BlocksSkipped)
		st.BlocksScanned.Add(rec.BlocksScanned)
		st.WordsCompared.Add(rec.WordsCompared)
		st.ReadaheadIssued.Add(rec.ReadaheadIssued)
		st.ReadaheadHits.Add(rec.ReadaheadHits)
		st.WorkersUsed.Add(rec.WorkersUsed)
		st.ChainsStitched.Add(rec.ChainsStitched)
		if rec.Shard >= 0 {
			sh := s.reg.Shard(rec.Shard)
			sh.NodesChecked.Add(rec.Nodes)
			if rec.Stage == trace.StageShard {
				sh.Queries.Inc()
				sh.Nanos.Add(rec.Duration.Nanoseconds())
			}
		}
	}
	if s.slowlog != nil && elapsed >= s.slowlog.Threshold() {
		s.slowlog.Add(tr.Entry(start, name, status, elapsed))
	}
}
