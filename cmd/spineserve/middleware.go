package main

import (
	"context"
	"net/http"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"github.com/spine-index/spine/internal/trace"
)

// statusRecorder captures the response status for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	n, err := sr.ResponseWriter.Write(b)
	sr.bytes += int64(n)
	return n, err
}

// instrument wraps a handler with the full middleware stack, outermost
// first: panic recovery, metrics + structured logging, the concurrency
// limiter (query endpoints only), the per-request query deadline, and —
// for sampled query requests — a per-query trace whose spans feed the
// per-stage/per-shard registry series and the slow-query log. The
// handler goroutine carries a pprof endpoint label so CPU profiles
// split by route.
func (s *server) instrument(name string, limited bool, h http.HandlerFunc) http.Handler {
	ep := s.reg.Endpoint(name)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w}
		var tr *trace.Trace
		ep.InFlight.Inc()
		defer func() {
			ep.InFlight.Dec()
			// Panic recovery: convert to 500, log the stack, keep serving.
			if rec := recover(); rec != nil {
				s.cfg.logger.Printf("panic endpoint=%s err=%v\n%s", name, rec, debug.Stack())
				if sr.status == 0 {
					writeAPIError(sr, http.StatusInternalServerError, codeInternal, "internal server error")
				}
			}
			if sr.status == 0 {
				sr.status = http.StatusOK // nothing written: net/http sends 200
			}
			elapsed := time.Since(start)
			ep.ObserveRequest(sr.status, elapsed)
			s.observeTrace(tr, name, sr.status, start, elapsed)
			s.cfg.logger.Printf("method=%s path=%s endpoint=%s status=%d durUs=%d bytes=%d",
				r.Method, r.URL.Path, name, sr.status, elapsed.Microseconds(), sr.bytes)
		}()

		if limited && s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				// Saturated: shed load instead of queueing unboundedly.
				sr.Header().Set("Retry-After", "1")
				writeAPIError(sr, http.StatusTooManyRequests, codeSaturated, "server saturated, retry later")
				return
			}
		}

		ctx := r.Context()
		if limited && s.cfg.queryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.queryTimeout)
			defer cancel()
		}
		if limited && s.sampler.Sample() {
			tr = trace.New()
			tr.SetEndpoint(name)
			ctx = trace.NewContext(ctx, tr)
		}
		r = r.WithContext(ctx)
		// pprof.Do restores the goroutine's labels on return, which also
		// cleans up any labels handlers add (e.g. plen_bucket).
		pprof.Do(ctx, pprof.Labels("endpoint", name), func(context.Context) {
			h(sr, r)
		})
	})
}

// observeTrace folds a finished query's spans into the registry's
// per-stage and per-shard series and, past the threshold, appends the
// query to the slow log with its full breakdown.
func (s *server) observeTrace(tr *trace.Trace, name string, status int, start time.Time, elapsed time.Duration) {
	if tr == nil {
		return
	}
	for _, rec := range tr.Records() {
		st := s.reg.Stage(rec.Stage)
		st.Spans.Inc()
		st.Nanos.Add(rec.Duration.Nanoseconds())
		st.Nodes.Add(rec.Nodes)
		st.RibHops.Add(rec.RibHops)
		st.ExtribHops.Add(rec.ExtribHops)
		st.BlocksSkipped.Add(rec.BlocksSkipped)
		st.BlocksScanned.Add(rec.BlocksScanned)
		if rec.Shard >= 0 {
			sh := s.reg.Shard(rec.Shard)
			sh.NodesChecked.Add(rec.Nodes)
			if rec.Stage == trace.StageShard {
				sh.Queries.Inc()
				sh.Nanos.Add(rec.Duration.Nanoseconds())
			}
		}
	}
	if s.slowlog != nil && elapsed >= s.slowlog.Threshold() {
		s.slowlog.Add(tr.Entry(start, name, status, elapsed))
	}
}
