package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/spine-index/spine"
)

// batchResponse mirrors the /batch JSON envelope for decoding in tests.
type batchResponse struct {
	Patterns int         `json:"patterns"`
	Unique   int         `json:"unique"`
	Limit    int         `json:"limit"`
	Results  []batchItem `json:"results"`
}

// batchServer serves a sharded index (maxPattern 8) so per-item
// overlong-pattern failures are reachable through the engine.
func batchServer(t *testing.T, cfg serverConfig) (*httptest.Server, *spine.Sharded) {
	t.Helper()
	text := []byte(strings.Repeat("aaccacaacaggtacc", 16))
	sh, err := spine.BuildSharded(text, 64, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newQueryServer(sh, cfg).mux())
	t.Cleanup(ts.Close)
	return ts, sh
}

func postBatch(t *testing.T, url, body string) (*http.Response, batchResponse) {
	t.Helper()
	resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding /batch response: %v", err)
		}
	}
	return resp, out
}

// TestBatchEndpoint: the object form answers each item with the same
// positions as a /findall for that pattern, keeps request order, and
// reports per-item statuses — including an engine-level overlong
// pattern failing alone.
func TestBatchEndpoint(t *testing.T) {
	ts, sh := batchServer(t, defaultConfig())
	long := strings.Repeat("a", 9) // over the sharded maxPattern 8
	body := `{"patterns":["ac","ac","gg","zz","` + long + `",""],"limit":50}`
	resp, out := postBatch(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Patterns != 6 || out.Unique != 5 || out.Limit != 50 {
		t.Fatalf("envelope = %+v, want patterns 6 unique 5 limit 50", out)
	}
	if len(out.Results) != 6 {
		t.Fatalf("%d results, want 6", len(out.Results))
	}
	for i, p := range []string{"ac", "ac", "gg", "zz", "", ""} {
		if i == 4 {
			// The overlong item fails alone.
			it := out.Results[4]
			if it.Status != "error" || it.Error == nil ||
				it.Error.Code != codePatternTooLong || !strings.Contains(it.Error.Message, "pattern too long") {
				t.Fatalf("overlong item = %+v, want status error with pattern_too_long error object", it)
			}
			continue
		}
		if i == 5 {
			p = "" // empty pattern occurs everywhere
		}
		it := out.Results[i]
		if it.Status != "ok" {
			t.Fatalf("item %d = %+v, want ok", i, it)
		}
		want, err := sh.FindAllLimitContext(context.Background(), []byte(p), 50)
		if err != nil {
			t.Fatal(err)
		}
		if it.Count != len(want.Positions) || it.Truncated != want.Truncated {
			t.Fatalf("item %d (%q): count %d truncated %v, want %d/%v",
				i, p, it.Count, it.Truncated, len(want.Positions), want.Truncated)
		}
		for j, pos := range want.Positions {
			if it.Positions[j] != pos {
				t.Fatalf("item %d (%q): positions %v, want %v", i, p, it.Positions, want.Positions)
			}
		}
	}

	// Telemetry: one batch, six patterns, one in-batch duplicate, one
	// rejected item; and the Prometheus exposition carries the families.
	var m struct {
		Batch struct {
			Batches       int64 `json:"batches"`
			Patterns      int64 `json:"patterns"`
			Deduped       int64 `json:"deduped"`
			RejectedItems int64 `json:"rejectedItems"`
		} `json:"batch"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Batch.Batches != 1 || m.Batch.Patterns != 6 || m.Batch.Deduped != 1 || m.Batch.RejectedItems != 1 {
		t.Fatalf("batch telemetry = %+v, want 1/6/1/1", m.Batch)
	}
	promResp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, promResp.Body); err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"spine_batch_requests_total 1",
		"spine_batch_patterns_total 6",
		"spine_batch_deduped_patterns_total 1",
		"spine_batch_rejected_items_total 1",
		"spine_batch_size_count 1",
	} {
		if !strings.Contains(sb.String(), family) {
			t.Fatalf("prometheus exposition missing %q:\n%s", family, sb.String())
		}
	}
}

// TestBatchBareArrayForm: a bare JSON array is accepted with the
// default (findall-cap) limit.
func TestBatchBareArrayForm(t *testing.T) {
	ts, _ := batchServer(t, defaultConfig())
	resp, out := postBatch(t, ts.URL, `["ac","gg"]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Limit != defaultConfig().findAllCap {
		t.Fatalf("limit = %d, want findall cap %d", out.Limit, defaultConfig().findAllCap)
	}
	if len(out.Results) != 2 || out.Results[0].Status != "ok" || out.Results[1].Status != "ok" {
		t.Fatalf("results = %+v", out.Results)
	}
}

// TestBatchValidation: malformed bodies, empty batches, oversized
// batches and bad limits are 400s; a pattern over the server byte cap
// fails per-item without reaching the engine.
func TestBatchValidation(t *testing.T) {
	cfg := defaultConfig()
	cfg.maxBatchPatterns = 3
	cfg.maxPatternLen = 4
	ts, _ := batchServer(t, cfg)
	for _, body := range []string{``, `{}`, `{"patterns":[]}`, `[]`, `not json`, `{"patterns":["a"],"limit":-1}`, `["a","b","c","d"]`} {
		resp, _ := postBatch(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
	// Over the server's byte cap (but under the shard maxPattern): the
	// request succeeds, the item alone errors.
	resp, out := postBatch(t, ts.URL, `["accac","ac"]`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if it := out.Results[0]; it.Status != "error" || it.Error == nil ||
		it.Error.Code != codePatternTooLong || !strings.Contains(it.Error.Message, "pattern too long") {
		t.Fatalf("capped item = %+v, want per-item pattern_too_long error object", out.Results[0])
	}
	if out.Results[1].Status != "ok" {
		t.Fatalf("neighbor item = %+v, want ok", out.Results[1])
	}
}

// TestBatchLimitCapped: a client limit above the /findall cap is capped.
func TestBatchLimitCapped(t *testing.T) {
	cfg := defaultConfig()
	cfg.findAllCap = 7
	ts, _ := batchServer(t, cfg)
	resp, out := postBatch(t, ts.URL, `{"patterns":["a"],"limit":1000000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if out.Limit != 7 {
		t.Fatalf("limit = %d, want capped to 7", out.Limit)
	}
	if it := out.Results[0]; len(it.Positions) != 7 || !it.Truncated {
		t.Fatalf("item = %+v, want 7 positions truncated", it)
	}
}

// TestBatchTimeout: the per-request deadline aborts a stuck batch with
// 504, same as single queries.
func TestBatchTimeout(t *testing.T) {
	fq := newBlockingQuerier()
	cfg := defaultConfig()
	cfg.queryTimeout = 50 * time.Millisecond
	ts := httptest.NewServer(newQueryServer(fq, cfg).mux())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`["a","b"]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}
