package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/spine-index/spine"
)

// slowlogResponse mirrors the /debug/slowlog JSON shape.
type slowlogResponse struct {
	Enabled     bool  `json:"enabled"`
	ThresholdUs int64 `json:"thresholdUs"`
	Total       int64 `json:"total"`
	Entries     []struct {
		Endpoint     string `json:"endpoint"`
		Status       int    `json:"status"`
		DurationUs   int64  `json:"durationUs"`
		NodesChecked int64  `json:"nodesChecked"`
		Pattern      struct {
			Hash   string `json:"hash"`
			Len    int    `json:"len"`
			Prefix string `json:"prefix"`
		} `json:"pattern"`
		Stages []struct {
			Stage      string `json:"stage"`
			Shard      int    `json:"shard"`
			Spans      int64  `json:"spans"`
			DurationUs int64  `json:"durationUs"`
			Nodes      int64  `json:"nodes"`
		} `json:"stages"`
	} `json:"entries"`
}

func observabilityServer(t *testing.T, q spine.Querier) (*server, *httptest.Server) {
	t.Helper()
	cfg := defaultConfig()
	cfg.slowlogThreshold = time.Nanosecond // every query is "slow"
	cfg.traceSample = 1
	app := newQueryServer(q, cfg)
	ts := httptest.NewServer(app.mux())
	t.Cleanup(ts.Close)
	return app, ts
}

// TestSlowlogBreakdown is the acceptance check for slow-query
// forensics: a query over the threshold appears at /debug/slowlog with
// per-stage durations and node counters whose sum matches the query's
// reported NodesChecked.
func TestSlowlogBreakdown(t *testing.T) {
	data := bytes.Repeat([]byte("acgtacgtttgcaacg"), 256)
	sh, err := spine.BuildSharded(data, 1024, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	app, ts := observabilityServer(t, sh)

	resp, err := http.Get(ts.URL + "/findall?q=acgtacg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("findall status = %d", resp.StatusCode)
	}
	wantNodes := app.reg.Query.NodesChecked.Value()
	if wantNodes == 0 {
		t.Fatal("query did no work; test is vacuous")
	}

	resp, err = http.Get(ts.URL + "/debug/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sl slowlogResponse
	if err := json.NewDecoder(resp.Body).Decode(&sl); err != nil {
		t.Fatal(err)
	}
	if !sl.Enabled || sl.Total < 1 || len(sl.Entries) < 1 {
		t.Fatalf("slowlog missing the query: %+v", sl)
	}
	e := sl.Entries[0]
	if e.Endpoint != "findall" || e.Status != http.StatusOK {
		t.Fatalf("entry identity wrong: %+v", e)
	}
	if e.Pattern.Prefix != "acgtacg" || e.Pattern.Len != 7 || e.Pattern.Hash == "" {
		t.Fatalf("pattern fingerprint wrong: %+v", e.Pattern)
	}
	if len(e.Stages) == 0 {
		t.Fatal("entry has no per-stage breakdown")
	}
	if e.NodesChecked != wantNodes {
		t.Fatalf("entry NodesChecked = %d, want the query's reported %d", e.NodesChecked, wantNodes)
	}
	var stageNodes int64
	stages := map[string]bool{}
	shardAttributed := false
	for _, st := range e.Stages {
		stageNodes += st.Nodes
		stages[st.Stage] = true
		if st.Shard >= 0 {
			shardAttributed = true
		}
	}
	if stageNodes != e.NodesChecked {
		t.Fatalf("stage node counters sum to %d, want NodesChecked %d", stageNodes, e.NodesChecked)
	}
	for _, want := range []string{"descend", "occurrences", "shard", "merge"} {
		if !stages[want] {
			t.Fatalf("breakdown missing stage %q: %+v", want, e.Stages)
		}
	}
	if !shardAttributed {
		t.Fatal("sharded query has no shard-attributed spans")
	}
}

// TestSlowlogDisabledBySampling verifies that turning sampling off keeps
// queries working and the slow log empty — the tracing-off path.
func TestSlowlogDisabledBySampling(t *testing.T) {
	cfg := defaultConfig()
	cfg.slowlogThreshold = time.Nanosecond
	cfg.traceSample = 0
	app := newQueryServer(spine.Build([]byte("abracadabra")), cfg)
	ts := httptest.NewServer(app.mux())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/findall?q=abra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("findall status = %d", resp.StatusCode)
	}
	entries, total := app.slowlog.Snapshot()
	if total != 0 || len(entries) != 0 {
		t.Fatalf("unsampled queries reached the slowlog: total=%d", total)
	}
}

// promLineRe matches one sample line of the text exposition format.
var promLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// TestMetricsPromFormat is the acceptance check for the Prometheus
// endpoint: every line parses, the Content-Type is the exposition
// format, and the trace-fed per-stage/per-shard series are present.
// (Strict format validation lives in internal/telemetry's unit tests;
// this exercises the HTTP surface end to end.)
func TestMetricsPromFormat(t *testing.T) {
	data := bytes.Repeat([]byte("acgtacgtttgcaacg"), 256)
	sh, err := spine.BuildSharded(data, 1024, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := observabilityServer(t, sh)

	for _, url := range []string{"/findall?q=acgtacg", "/contains?q=ttgc", "/count?q=acg"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for ln, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRe.MatchString(line) {
			t.Fatalf("line %d not valid exposition format: %q", ln+1, line)
		}
	}
	for _, want := range []string{
		`spine_http_requests_total{endpoint="findall"} `,
		`spine_stage_nodes_checked_total{stage="descend"} `,
		`spine_shard_queries_total{shard="0"} `,
		`le="+Inf"`,
		"spine_goroutines ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q\n%s", want, body)
		}
	}

	// The JSON shape must be unaffected by the format switch.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("default /metrics no longer JSON: %v", err)
	}
	if _, ok := snap["stages"]; !ok {
		t.Fatal("JSON snapshot missing per-stage aggregates")
	}
}
