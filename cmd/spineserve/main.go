// Command spineserve serves substring queries over a SPINE index via
// HTTP — the "integration with database engines" angle of §1: the index is
// linear, serializable and read-concurrent, so a query service is a thin
// layer.
//
//	spineserve -fasta genome.fa -addr :8080
//	spineserve -synthetic eco -divide 100 -addr :8080
//
// Endpoints (all JSON):
//
//	GET  /stats                          index statistics
//	GET  /contains?q=acgt                substring test
//	GET  /find?q=acgt                    first occurrence
//	GET  /findall?q=acgt&limit=100       all occurrences
//	GET  /approx?q=acgt&k=1&model=hamming  approximate occurrences
//	POST /match?minlen=20                maximal matches vs the body sequence
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
)

func main() {
	var (
		fasta     = flag.String("fasta", "", "FASTA file to index (first record)")
		synthetic = flag.String("synthetic", "", "synthetic suite sequence name")
		divide    = flag.Int("divide", 1, "scale divisor for synthetic sequences")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	srv, err := newServer(*fasta, *synthetic, *divide)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spineserve:", err)
		os.Exit(1)
	}
	log.Printf("spineserve: indexed %d characters, listening on %s", srv.idx.Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

// server wraps a built index with HTTP handlers.
type server struct {
	idx *spine.Index
}

func newServer(fasta, synthetic string, divide int) (*server, error) {
	var data []byte
	switch {
	case fasta != "":
		f, err := os.Open(fasta)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := seq.ReadFASTA(f)
		if err != nil {
			return nil, err
		}
		data = seq.DNA.Sanitize(recs[0].Seq)
	case synthetic != "":
		s, err := seqgen.SuiteSequence(synthetic, divide)
		if err != nil {
			return nil, err
		}
		data = s
	default:
		return nil, fmt.Errorf("one of -fasta or -synthetic is required")
	}
	return &server{idx: spine.Build(data)}, nil
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /contains", s.handleContains)
	m.HandleFunc("GET /find", s.handleFind)
	m.HandleFunc("GET /findall", s.handleFindAll)
	m.HandleFunc("GET /approx", s.handleApprox)
	m.HandleFunc("POST /match", s.handleMatch)
	return m
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; log-worthy in a real deployment.
		return
	}
}

func badRequest(w http.ResponseWriter, msg string) {
	http.Error(w, msg, http.StatusBadRequest)
}

// pattern extracts and validates the q parameter.
func pattern(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing q parameter")
		return nil, false
	}
	if len(q) > 1<<20 {
		badRequest(w, "pattern too long")
		return nil, false
	}
	return []byte(q), true
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.idx.Stats()
	writeJSON(w, map[string]any{
		"length":      st.Length,
		"ribs":        st.RibCount,
		"extribs":     st.ExtribCount,
		"maxLEL":      st.MaxLEL,
		"maxPT":       st.MaxPT,
		"memoryBytes": st.MemoryBytes,
	})
}

func (s *server) handleContains(w http.ResponseWriter, r *http.Request) {
	p, ok := pattern(w, r)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{"contains": s.idx.Contains(p)})
}

func (s *server) handleFind(w http.ResponseWriter, r *http.Request) {
	p, ok := pattern(w, r)
	if !ok {
		return
	}
	writeJSON(w, map[string]any{"position": s.idx.Find(p)})
}

func (s *server) handleFindAll(w http.ResponseWriter, r *http.Request) {
	p, ok := pattern(w, r)
	if !ok {
		return
	}
	limit := 1000
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			badRequest(w, "bad limit")
			return
		}
		limit = n
	}
	occ := s.idx.FindAll(p)
	total := len(occ)
	if len(occ) > limit {
		occ = occ[:limit]
	}
	writeJSON(w, map[string]any{"total": total, "positions": occ})
}

func (s *server) handleApprox(w http.ResponseWriter, r *http.Request) {
	p, ok := pattern(w, r)
	if !ok {
		return
	}
	k := 1
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 3 {
			badRequest(w, "bad k (0..3)")
			return
		}
		k = n
	}
	model := spine.Hamming
	switch r.URL.Query().Get("model") {
	case "", "hamming":
	case "edit":
		model = spine.Edit
	default:
		badRequest(w, "bad model (hamming|edit)")
		return
	}
	writeJSON(w, map[string]any{"positions": s.idx.FindAllWithin(p, k, model)})
}

func (s *server) handleMatch(w http.ResponseWriter, r *http.Request) {
	minLen := 20
	if v := r.URL.Query().Get("minlen"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			badRequest(w, "bad minlen")
			return
		}
		minLen = n
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		badRequest(w, "reading body")
		return
	}
	if len(body) == 0 {
		badRequest(w, "empty query sequence")
		return
	}
	matches, info, err := s.idx.MaximalMatches(body, minLen)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{
		"matches":      matches,
		"pairs":        info.Pairs,
		"nodesChecked": info.NodesChecked,
		"elapsedNs":    info.Elapsed.Nanoseconds(),
	})
}
