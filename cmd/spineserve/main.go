// Command spineserve is a production query service over a SPINE index —
// the "integration with database engines" angle of §1 grown into a real
// serving layer: any index flavor behind the unified spine.Querier API,
// fronted by a sharded result cache and a q-gram negative filter, with
// per-request deadlines that abort backbone scans mid-flight, load
// shedding, panic recovery, structured request logs, /metrics telemetry
// (latency histograms, nodes-checked aggregates, cache hit rates), and
// graceful drain on SIGINT/SIGTERM.
//
//	spineserve -fasta genome.fa -addr :8080
//	spineserve -index-file genome.spine -mmap -warmup -addr :8080
//	spineserve -synthetic eco -divide 100 -mode sharded -addr :8080
//	spineserve -synthetic eco -cache-bytes 134217728 -neg-filter=true
//	spineserve -synthetic eco -obs-export events.jsonl -log-format=json
//
// Endpoints (all JSON; query endpoints live under /v1/, and the
// unversioned paths remain as deprecated aliases answering with a
// Deprecation header and a successor-version Link). Errors share one
// shape: {"error": {"code": "...", "message": "..."}}.
//
//	GET  /healthz                          liveness + indexed length
//	GET  /metrics                          telemetry snapshot (latency histograms, query + cache + obs stats)
//	GET  /metrics?format=prom              Prometheus text exposition of the same registry (+ spine_obs_*/spine_slo_*)
//	GET  /stats                            index structure statistics
//	GET  /v1/contains?q=acgt               substring test
//	GET  /v1/find?q=acgt                   first occurrence
//	GET  /v1/findall?q=acgt&limit=100      occurrences (server-capped; "truncated" flags cut-off)
//	GET  /v1/count?q=acgt                  occurrence count
//	GET  /v1/approx?q=acgt&k=1&model=hamming  approximate occurrences (index mode only)
//	POST /v1/match?minlen=20               maximal matches vs the body sequence
//	POST /v1/batch                         multi-pattern batch (JSON array or {"patterns":[...],"limit":N})
//	GET  /debug/slowlog                    recent slow queries with per-stage breakdowns
//	GET  /debug/dash                       RED rollups (1s/10s/1m rings), SLO burn rates, exporter health
//	GET  /debug/vars, /debug/pprof/*       expvar + pprof
//
// The cache layer (-cache-bytes, 0 disables) serves repeated queries
// without touching the index and invalidates by epoch; the negative
// filter (-neg-filter) proves most absent patterns absent in O(|P|).
// Hit/miss/reject rates surface as spine_cache_* and spine_negfilter_*
// Prometheus families.
//
// Overload returns 429 with Retry-After; queries past -query-timeout
// return 504 after aborting the index scan. Query requests carry a
// per-query trace (sampled 1-in--trace-sample) whose stage spans feed
// the per-stage/per-shard Prometheus series; requests at or above
// -slowlog-threshold land in the /debug/slowlog ring with per-stage
// durations and §4.1 node counters.
//
// Every request carries correlation identity: the server adopts a sane
// client X-Request-Id (minting one otherwise) and echoes it on every
// response; query endpoints additionally ingest a W3C traceparent
// header, continue the caller's trace with a fresh server span, and
// echo the new traceparent. Each query emits one wide event — batch
// requests one per item, sharded fan-outs one per shard leg, all
// children of the request span — through a bounded, never-blocking
// async exporter (-obs-export JSONL file, -obs-http batch collector;
// overflow increments a dropped counter instead of stalling the query
// path). The same events feed a multi-resolution RED rollup and the
// -slo-* burn-rate engine behind /debug/dash and spine_slo_*.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/spine-index/spine"
	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/obs"
	"github.com/spine-index/spine/internal/seq"
	"github.com/spine-index/spine/internal/seqgen"
)

func main() {
	var (
		fasta      = flag.String("fasta", "", "FASTA file to index (first record)")
		synthetic  = flag.String("synthetic", "", "synthetic suite sequence name")
		indexFile  = flag.String("index-file", "", "serve a saved compact index file (spine.Save output) instead of building one")
		useMmap    = flag.Bool("mmap", true, "memory-map -index-file zero-copy where the platform supports it")
		warmFile   = flag.Bool("warmup", true, "touch the hot top of the Link Table after a mapped open")
		divide     = flag.Int("divide", 1, "scale divisor for synthetic sequences")
		mode       = flag.String("mode", "index", "index layout: index|compact|sharded")
		shardSize  = flag.Int("shard-size", 1<<22, "shard slice length (sharded mode)")
		maxPattern = flag.Int("max-pattern", 1<<16, "longest supported pattern (sharded mode)")
		workers    = flag.Int("workers", 0, "shard build workers, 0 = one per shard (sharded mode)")
		addr       = flag.String("addr", ":8080", "listen address")

		cacheBytes = flag.Int64("cache-bytes", 64<<20, "result cache byte budget; 0 disables the cache layer")
		negFilter  = flag.Bool("neg-filter", true, "build a q-gram negative filter for O(|P|) absent-pattern answers (cache layer only)")

		scanParallel = flag.Int("scan-parallel", 0, "intra-query scan workers: 0 = adaptive (one per core on long scans), 1 = sequential, k = exactly k")

		queryTimeout = flag.Duration("query-timeout", 10*time.Second, "per-request index work deadline")
		maxInFlight  = flag.Int("max-inflight", 64, "max concurrent query requests before shedding 429s; 0 = unlimited")
		findAllCap   = flag.Int("findall-cap", 10000, "hard cap on /findall result size")
		maxPatLen    = flag.Int("max-pattern-len", 1<<20, "max q parameter length in bytes")
		maxBody      = flag.Int64("max-body", 256<<20, "max /match and /batch body size in bytes")
		batchCap     = flag.Int("batch-cap", 256, "max patterns per /batch request")
		drainTimeout = flag.Duration("drain-timeout", 15*time.Second, "graceful shutdown drain deadline")

		slowlogThreshold = flag.Duration("slowlog-threshold", 250*time.Millisecond, "retain queries at least this slow in /debug/slowlog; 0 disables")
		slowlogSize      = flag.Int("slowlog-size", 128, "slow-query ring capacity")
		traceSample      = flag.Int("trace-sample", 1, "trace 1 in N query requests (1 = all, 0 = none)")

		logFormat = flag.String("log-format", "text", "request log format: text|json")
		obsExport = flag.String("obs-export", "", "append wide events as JSON lines to this file")
		obsHTTP   = flag.String("obs-http", "", "POST wide-event batches to this collector URL")
		obsBuffer = flag.Int("obs-buffer", 4096, "wide-event export queue capacity; overflow drops (never blocks)")

		sloAvailability = flag.Float64("slo-availability", 0.999, "availability objective (fraction of non-5xx query responses); 0 disables")
		sloLatencyObj   = flag.Float64("slo-latency-objective", 0.99, "latency objective (fraction of queries under -slo-latency); 0 disables")
		sloLatency      = flag.Duration("slo-latency", 100*time.Millisecond, "latency SLO threshold (also the RED rollup's slow cut)")
	)
	flag.Parse()
	core.SetScanParallelism(*scanParallel)

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spineserve:", err)
		os.Exit(1)
	}

	q, err := buildQuerier(*fasta, *synthetic, *indexFile, *useMmap, *warmFile, *divide, *mode, *shardSize, *maxPattern, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spineserve:", err)
		os.Exit(1)
	}
	servingMode := *mode
	if *indexFile != "" {
		// -index-file bypasses -mode; report how the image was opened.
		servingMode = "mapped"
		if mc, ok := q.(*spine.MappedCompact); ok {
			servingMode = "mapped/" + mc.Mode()
		}
	}
	q, err = wrapCache(q, *cacheBytes, *negFilter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spineserve:", err)
		os.Exit(1)
	}

	// The pipeline always runs — with zero sinks it still feeds the RED
	// rollup behind /debug/dash and the SLO burn rates, and the wide
	// events carry correlation ids even when nothing exports them.
	var sinks []obs.Sink
	if *obsExport != "" {
		js, err := obs.OpenJSONLSink(*obsExport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spineserve:", err)
			os.Exit(1)
		}
		sinks = append(sinks, js)
	}
	if *obsHTTP != "" {
		sinks = append(sinks, obs.NewHTTPSink(*obsHTTP, nil, -1, 0))
	}
	red := obs.NewRED(*sloLatency)
	pipe := obs.NewPipeline(obs.Config{Buffer: *obsBuffer, RED: red}, sinks...)
	slo := obs.NewSLO(obs.SLOConfig{
		Availability:     *sloAvailability,
		LatencyObjective: *sloLatencyObj,
		LatencyThreshold: *sloLatency,
	}, red)

	cfg := serverConfig{
		queryTimeout:     *queryTimeout,
		maxInFlight:      *maxInFlight,
		maxPatternLen:    *maxPatLen,
		maxBodyBytes:     *maxBody,
		maxBatchPatterns: *batchCap,
		findAllCap:       *findAllCap,
		logger:           logger,
		pipeline:         pipe,
		slo:              slo,

		slowlogThreshold: *slowlogThreshold,
		slowlogSize:      *slowlogSize,
		traceSample:      *traceSample,
	}
	app := newQueryServer(q, cfg)

	srv := newHTTPServer(*addr, app.mux(), *queryTimeout)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spineserve:", err)
		os.Exit(1)
	}
	logger.Info("spineserve: listening",
		slog.String("mode", servingMode),
		slog.Int("indexedChars", q.Len()),
		slog.String("addr", ln.Addr().String()))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	serveErr := serveUntilDone(ctx, srv, ln, *drainTimeout)

	// Drain the exporter after the HTTP server: every in-flight request
	// has emitted its event by now, and the bounded wait keeps shutdown
	// prompt even with a wedged collector.
	closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := pipe.Close(closeCtx); err != nil {
		logger.Error("spineserve: event exporter close", slog.Any("err", err))
	}
	if serveErr != nil {
		logger.Error("spineserve: serve", slog.Any("err", serveErr))
		os.Exit(1)
	}
	logger.Info("spineserve: drained, bye")
}

// newLogger builds the process logger in the requested format; request
// logs, panics and lifecycle messages all flow through it.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text|json)", format)
	}
}

// newHTTPServer hardens the listener: header/read/write/idle timeouts so
// slow or stuck clients cannot pin connections forever. The write
// timeout leaves headroom over the query deadline so a slow scan maps to
// a clean 504 rather than a killed connection.
func newHTTPServer(addr string, h http.Handler, queryTimeout time.Duration) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute, // /match bodies can be large
		WriteTimeout:      queryTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// serveUntilDone serves until ctx is cancelled (SIGINT/SIGTERM), then
// shuts down gracefully: the listener closes immediately, in-flight
// requests drain up to drainTimeout, then remaining connections are cut.
func serveUntilDone(ctx context.Context, srv *http.Server, ln net.Listener, drainTimeout time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return fmt.Errorf("drain incomplete after %v: %w", drainTimeout, err)
	}
	return nil
}

// wrapCache fronts the index with the serving cache layer: the sharded
// result cache plus (optionally) the q-gram negative filter. cacheBytes
// <= 0 serves the raw index.
func wrapCache(q spine.Querier, cacheBytes int64, negFilter bool) (spine.Querier, error) {
	if cacheBytes <= 0 {
		return q, nil
	}
	return spine.Cached(q, spine.CacheConfig{
		MaxBytes:         cacheBytes,
		DisableNegFilter: !negFilter,
	})
}

// buildQuerier loads the text and builds the requested index flavor
// behind the unified Querier API. With -index-file the index is served
// straight from the saved image (zero-copy mmap where supported) and
// the build flags are ignored.
func buildQuerier(fasta, synthetic, indexFile string, useMmap, warm bool, divide int, mode string, shardSize, maxPattern, workers int) (spine.Querier, error) {
	if indexFile != "" {
		return spine.OpenMapped(indexFile, spine.MappedOptions{
			NoMmap: !useMmap,
			Warmup: warm,
		})
	}
	var data []byte
	switch {
	case fasta != "":
		f, err := os.Open(fasta)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := seq.ReadFASTA(f)
		if err != nil {
			return nil, err
		}
		data = seq.DNA.Sanitize(recs[0].Seq)
	case synthetic != "":
		s, err := seqgen.SuiteSequence(synthetic, divide)
		if err != nil {
			return nil, err
		}
		data = s
	default:
		return nil, fmt.Errorf("one of -fasta, -synthetic or -index-file is required")
	}
	switch mode {
	case "index", "":
		return spine.Build(data), nil
	case "compact":
		return spine.Build(data).Compact(spine.DNA)
	case "sharded":
		if shardSize > len(data) && len(data) > 0 {
			shardSize = len(data)
		}
		if maxPattern > shardSize {
			maxPattern = shardSize
		}
		return spine.BuildSharded(data, shardSize, maxPattern, workers)
	default:
		return nil, fmt.Errorf("unknown -mode %q (index|compact|sharded)", mode)
	}
}
