package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fa")
	if err := os.WriteFile(path, []byte(">g\naaccacaacaggtacca\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(path, "", 1)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/stats", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out["length"].(float64) != 17 {
		t.Fatalf("stats = %v", out)
	}
}

func TestContainsEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	getJSON(t, ts.URL+"/contains?q=cacaa", &out)
	if out["contains"] != true {
		t.Fatalf("contains(cacaa) = %v", out)
	}
	getJSON(t, ts.URL+"/contains?q=accaa", &out)
	if out["contains"] != false {
		t.Fatalf("contains(accaa) = %v (the paper's false positive!)", out)
	}
}

func TestFindAllEndpointWithLimit(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Total     int   `json:"total"`
		Positions []int `json:"positions"`
	}
	getJSON(t, ts.URL+"/findall?q=ac&limit=2", &out)
	if out.Total != 4 || len(out.Positions) != 2 || out.Positions[0] != 1 {
		t.Fatalf("findall = %+v", out)
	}
}

func TestApproxEndpoint(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Positions []int `json:"positions"`
	}
	getJSON(t, ts.URL+"/approx?q=acaaca&k=1&model=hamming", &out)
	if len(out.Positions) == 0 {
		t.Fatalf("approx found nothing: %+v", out)
	}
	resp := getJSON(t, ts.URL+"/approx?q=ac&k=9", &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized k accepted: %d", resp.StatusCode)
	}
}

func TestMatchEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/match?minlen=4", "text/plain",
		strings.NewReader("ttttccacaacagtttt"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Pairs        int `json:"pairs"`
		NodesChecked int `json:"nodesChecked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pairs == 0 || out.NodesChecked == 0 {
		t.Fatalf("match result degenerate: %+v", out)
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	for _, url := range []string{"/contains", "/find", "/findall?q=a&limit=0"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/match", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty match body: status %d", resp.StatusCode)
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := newServer("", "", 1); err == nil {
		t.Fatal("missing input accepted")
	}
	if _, err := newServer("/nonexistent.fa", "", 1); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := newServer("", "eco", 2000); err != nil {
		t.Fatalf("synthetic input failed: %v", err)
	}
}
