package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testQuerierFromFASTA builds the default (reference Index) querier over
// a tiny genome file.
func testApp(t *testing.T) *server {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.fa")
	if err := os.WriteFile(path, []byte(">g\naaccacaacaggtacca\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, err := buildQuerier(path, "", "", false, false, 1, "index", 0, 0, 0)
	if err != nil {
		t.Fatalf("buildQuerier: %v", err)
	}
	return newQueryServer(q, defaultConfig())
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(testApp(t).mux())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/stats", &out)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out["length"].(float64) != 17 {
		t.Fatalf("stats = %v", out)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != 200 || out["ok"] != true {
		t.Fatalf("healthz: status %d, body %v", resp.StatusCode, out)
	}
}

func TestContainsEndpoint(t *testing.T) {
	ts := testServer(t)
	var out map[string]any
	getJSON(t, ts.URL+"/contains?q=cacaa", &out)
	if out["contains"] != true {
		t.Fatalf("contains(cacaa) = %v", out)
	}
	getJSON(t, ts.URL+"/contains?q=accaa", &out)
	if out["contains"] != false {
		t.Fatalf("contains(accaa) = %v (the paper's false positive!)", out)
	}
}

func TestFindAllEndpointWithLimit(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Count     int   `json:"count"`
		Positions []int `json:"positions"`
		Truncated bool  `json:"truncated"`
	}
	getJSON(t, ts.URL+"/findall?q=ac&limit=2", &out)
	if out.Count != 2 || len(out.Positions) != 2 || out.Positions[0] != 1 || !out.Truncated {
		t.Fatalf("findall = %+v", out)
	}
	// Unlimited within the cap: all four occurrences, not truncated.
	getJSON(t, ts.URL+"/findall?q=ac", &out)
	if out.Count != 4 || out.Truncated {
		t.Fatalf("uncapped findall = %+v", out)
	}
}

func TestFindAllServerCap(t *testing.T) {
	app := testApp(t)
	app.cfg.findAllCap = 3
	ts := httptest.NewServer(app.mux())
	defer ts.Close()
	var out struct {
		Count     int  `json:"count"`
		Truncated bool `json:"truncated"`
	}
	// "a" occurs 8 times; a limit above the cap is clamped to it.
	getJSON(t, ts.URL+"/findall?q=a&limit=100000", &out)
	if out.Count != 3 || !out.Truncated {
		t.Fatalf("capped findall = %+v", out)
	}
}

func TestCountEndpoint(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Count int `json:"count"`
	}
	getJSON(t, ts.URL+"/count?q=ac", &out)
	if out.Count != 4 {
		t.Fatalf("count = %+v", out)
	}
}

func TestApproxEndpoint(t *testing.T) {
	ts := testServer(t)
	var out struct {
		Positions []int `json:"positions"`
	}
	getJSON(t, ts.URL+"/approx?q=acaaca&k=1&model=hamming", &out)
	if len(out.Positions) == 0 {
		t.Fatalf("approx found nothing: %+v", out)
	}
	resp := getJSON(t, ts.URL+"/approx?q=ac&k=9", &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized k accepted: %d", resp.StatusCode)
	}
}

func TestMatchEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Post(ts.URL+"/match?minlen=4", "text/plain",
		strings.NewReader("ttttccacaacagtttt"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Pairs        int `json:"pairs"`
		NodesChecked int `json:"nodesChecked"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pairs == 0 || out.NodesChecked == 0 {
		t.Fatalf("match result degenerate: %+v", out)
	}
}

func TestBadRequests(t *testing.T) {
	ts := testServer(t)
	for _, url := range []string{"/contains", "/find", "/findall?q=a&limit=0"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/match", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty match body: status %d", resp.StatusCode)
	}
}

func TestPatternLengthCap(t *testing.T) {
	app := testApp(t)
	app.cfg.maxPatternLen = 4
	ts := httptest.NewServer(app.mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/contains?q=aaaaaaaa")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized pattern: status %d, want 400", resp.StatusCode)
	}
}

func TestBuildQuerierValidation(t *testing.T) {
	if _, err := buildQuerier("", "", "", false, false, 1, "index", 0, 0, 0); err == nil {
		t.Fatal("missing input accepted")
	}
	if _, err := buildQuerier("/nonexistent.fa", "", "", false, false, 1, "index", 0, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := buildQuerier("", "eco", "", false, false, 2000, "index", 0, 0, 0); err != nil {
		t.Fatalf("synthetic input failed: %v", err)
	}
	if _, err := buildQuerier("", "eco", "", false, false, 2000, "martian", 0, 0, 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestServeAllQuerierModes is the acceptance check that spineserve
// fronts reference, compact and sharded indexes through one API.
func TestServeAllQuerierModes(t *testing.T) {
	for _, mode := range []string{"index", "compact", "sharded"} {
		q, err := buildQuerier("", "eco", "", false, false, 2000, mode, 512, 64, 2)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		ts := httptest.NewServer(newQueryServer(q, defaultConfig()).mux())
		var out struct {
			Count     int   `json:"count"`
			Positions []int `json:"positions"`
		}
		resp := getJSON(t, ts.URL+"/findall?q=ac&limit=5", &out)
		if resp.StatusCode != 200 || out.Count == 0 {
			t.Fatalf("%s: findall status %d, %+v", mode, resp.StatusCode, out)
		}
		var st map[string]any
		if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != 200 {
			t.Fatalf("%s: stats status %d", mode, resp.StatusCode)
		}
		if st["ribs"].(float64) == 0 {
			t.Fatalf("%s: stats missing structure: %v", mode, st)
		}
		// Approximate search is an Index-only capability: 501 elsewhere.
		resp, err = http.Get(ts.URL + "/approx?q=ac&k=1")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wantApprox := http.StatusOK
		if mode != "index" {
			wantApprox = http.StatusNotImplemented
		}
		if resp.StatusCode != wantApprox {
			t.Fatalf("%s: approx status %d, want %d", mode, resp.StatusCode, wantApprox)
		}
		// Maximal matching works on index and compact, 501 on sharded.
		resp, err = http.Post(ts.URL+"/match?minlen=4", "text/plain", strings.NewReader("acacacgtacgt"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		wantMatch := http.StatusOK
		if mode == "sharded" {
			wantMatch = http.StatusNotImplemented
		}
		if resp.StatusCode != wantMatch {
			t.Fatalf("%s: match status %d, want %d", mode, resp.StatusCode, wantMatch)
		}
		ts.Close()
	}
}
