package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/spine-index/spine"
)

// blockingQuerier is a fake Querier whose FindAll path blocks until
// released — the deterministic way to hold a request in-flight for the
// saturation and drain tests.
type blockingQuerier struct {
	started chan struct{} // signaled when a FindAll enters
	release chan struct{} // closed to let FindAlls finish
	panicky bool
}

func newBlockingQuerier() *blockingQuerier {
	return &blockingQuerier{started: make(chan struct{}, 16), release: make(chan struct{})}
}

// Query blocks on the FindAll path (the one the saturation tests
// drive) and answers the cheap kinds immediately.
func (f *blockingQuerier) Query(ctx context.Context, p []byte, opts spine.QueryOptions) (spine.QueryResult, error) {
	switch opts.Kind {
	case spine.KindContains, spine.KindFind:
		return spine.QueryResult{Found: true, Position: 0}, ctx.Err()
	case spine.KindCount:
		return spine.QueryResult{Found: true, Position: -1, Count: 1}, ctx.Err()
	}
	if f.panicky {
		panic("querier exploded")
	}
	select {
	case f.started <- struct{}{}:
	default:
	}
	select {
	case <-f.release:
	case <-ctx.Done():
		return spine.QueryResult{}, ctx.Err()
	}
	return spine.QueryResult{Found: true, Position: 0, Count: 1, Positions: []int{0}, NodesChecked: 1}, nil
}

func (f *blockingQuerier) QueryBatch(ctx context.Context, patterns [][]byte, opts spine.BatchOptions) ([]spine.QueryResult, error) {
	out := make([]spine.QueryResult, len(patterns))
	for i, p := range patterns {
		res, err := f.Query(ctx, p, spine.QueryOptions{Kind: spine.KindFindAll, Limit: opts.Limit})
		if err != nil {
			return nil, err
		}
		out[i] = res
	}
	return out, nil
}

func (f *blockingQuerier) Len() int { return 1 }

// TestSaturationSheds429 is the acceptance check: when the concurrency
// limiter is full, further query requests shed with 429 + Retry-After
// while operational endpoints stay reachable.
func TestSaturationSheds429(t *testing.T) {
	fq := newBlockingQuerier()
	cfg := defaultConfig()
	cfg.maxInFlight = 1
	app := newQueryServer(fq, cfg)
	ts := httptest.NewServer(app.mux())
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/findall?q=a")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-fq.started // the slot is now held

	resp, err := http.Get(ts.URL + "/findall?q=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Health and metrics bypass the limiter.
	for _, p := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s under saturation: %d", p, resp.StatusCode)
		}
	}
	close(fq.release)
	wg.Wait()

	var m struct {
		Endpoints map[string]struct {
			Rejected int64 `json:"rejected"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Endpoints["findall"].Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", m.Endpoints["findall"].Rejected)
	}
}

// TestQueryTimeout504 verifies that an expired per-request deadline
// aborts the scan and maps to 504.
func TestQueryTimeout504(t *testing.T) {
	app := testApp(t)
	app.cfg.queryTimeout = time.Nanosecond
	ts := httptest.NewServer(app.mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/findall?q=ac")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
}

// TestCancellationMidScan verifies a client disconnect aborts the
// backbone scan through the request context.
func TestCancellationMidScan(t *testing.T) {
	fq := newBlockingQuerier()
	app := newQueryServer(fq, defaultConfig())
	ts := httptest.NewServer(app.mux())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/findall?q=a", nil)
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()
	<-fq.started
	cancel() // client goes away mid-scan; the fake returns ctx.Err()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("request unexpectedly succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return promptly")
	}
}

// TestPanicRecovery verifies a panicking handler converts to 500 and the
// server keeps serving.
func TestPanicRecovery(t *testing.T) {
	fq := newBlockingQuerier()
	fq.panicky = true
	app := newQueryServer(fq, defaultConfig())
	ts := httptest.NewServer(app.mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/findall?q=a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panic status = %d, want 500", resp.StatusCode)
	}
	// Still alive afterwards.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("server dead after panic: %d", resp.StatusCode)
	}
	var m struct {
		Endpoints map[string]struct {
			Errors5xx int64 `json:"errors5xx"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Endpoints["findall"].Errors5xx != 1 {
		t.Fatalf("5xx counter = %d, want 1", m.Endpoints["findall"].Errors5xx)
	}
}

// TestGracefulShutdownDrains is the acceptance check: on shutdown the
// listener closes, the in-flight request completes, and new connections
// are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	fq := newBlockingQuerier()
	app := newQueryServer(fq, defaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(ln.Addr().String(), app.mux(), time.Minute)
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serveUntilDone(ctx, srv, ln, 10*time.Second) }()
	base := "http://" + ln.Addr().String()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/findall?q=a")
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-fq.started

	cancel() // SIGTERM equivalent: begin draining
	// The drain must wait for the in-flight request...
	select {
	case err := <-served:
		t.Fatalf("shutdown finished with a request still in flight: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(fq.release)
	if status := <-inflight; status != 200 {
		t.Fatalf("in-flight request got %d, want 200", status)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveUntilDone: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("shutdown did not complete after drain")
	}
	// ...and the listener must already be closed to new connections.
	if _, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second); err == nil {
		t.Fatal("new connection accepted after shutdown")
	}
}

// TestMetricsShapeAfterBurst is the acceptance check on /metrics: after
// a query burst the latency histograms have non-zero counts and the
// SPINE aggregates (nodes checked, pattern lengths) are populated.
func TestMetricsShapeAfterBurst(t *testing.T) {
	ts := testServer(t)
	for i := 0; i < 10; i++ {
		var out map[string]any
		getJSON(t, ts.URL+"/findall?q=ac", &out)
		getJSON(t, ts.URL+fmt.Sprintf("/contains?q=%s", strings.Repeat("a", 1+i%3)), &out)
	}
	resp, err := http.Post(ts.URL+"/match?minlen=4", "text/plain", strings.NewReader("ttttccacaacagtttt"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var m struct {
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Endpoints     map[string]struct {
			Requests  int64 `json:"requests"`
			LatencyUs struct {
				Count   int64 `json:"count"`
				P50     int64 `json:"p50"`
				Buckets []struct {
					LE    int64 `json:"le"`
					Count int64 `json:"count"`
				} `json:"buckets"`
			} `json:"latencyUs"`
		} `json:"endpoints"`
		Query struct {
			NodesChecked int64 `json:"nodesChecked"`
			Occurrences  int64 `json:"occurrences"`
			PatternLen   struct {
				Count int64 `json:"count"`
			} `json:"patternLen"`
		} `json:"query"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	fa := m.Endpoints["findall"]
	if fa.Requests != 10 || fa.LatencyUs.Count != 10 || len(fa.LatencyUs.Buckets) == 0 {
		t.Fatalf("findall metrics degenerate: %+v", fa)
	}
	if m.Query.NodesChecked == 0 {
		t.Fatal("aggregate nodesChecked is zero after a burst")
	}
	if m.Query.Occurrences == 0 || m.Query.PatternLen.Count == 0 {
		t.Fatalf("query aggregates degenerate: %+v", m.Query)
	}
	if m.Endpoints["match"].Requests != 1 {
		t.Fatalf("match metrics missing: %+v", m.Endpoints["match"])
	}
}

// TestConcurrentQueriesDuringMetricReads hammers query endpoints while
// reading /metrics; run with -race to check the lock-free telemetry
// path.
func TestConcurrentQueriesDuringMetricReads(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				resp, err := http.Get(ts.URL + "/findall?q=ac")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err == nil {
					var s json.RawMessage
					json.NewDecoder(resp.Body).Decode(&s)
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	var m struct {
		Endpoints map[string]struct {
			Requests int64 `json:"requests"`
			InFlight int64 `json:"inFlight"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if m.Endpoints["findall"].Requests != 120 {
		t.Fatalf("requests = %d, want 120", m.Endpoints["findall"].Requests)
	}
	if m.Endpoints["findall"].InFlight != 0 {
		t.Fatalf("inFlight = %d after quiesce", m.Endpoints["findall"].InFlight)
	}
}

// TestDebugEndpoints spot-checks expvar and pprof are mounted.
func TestDebugEndpoints(t *testing.T) {
	ts := testServer(t)
	for _, p := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", p, resp.StatusCode)
		}
	}
}
