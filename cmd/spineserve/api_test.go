package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/spine-index/spine"
)

// errEnvelope mirrors the unified error shape for decoding in tests.
type errEnvelope struct {
	Error apiError `json:"error"`
}

// TestV1PathsAndDeprecatedAliases: every query endpoint answers under
// /v1/ without deprecation headers; the unversioned alias answers
// identically but carries Deprecation plus a successor-version Link.
func TestV1PathsAndDeprecatedAliases(t *testing.T) {
	ts := testServer(t)
	for _, name := range []string{"contains", "find", "findall", "count"} {
		v1, err := http.Get(ts.URL + "/v1/" + name + "?q=ac")
		if err != nil {
			t.Fatal(err)
		}
		v1Body, _ := io.ReadAll(v1.Body)
		v1.Body.Close()
		if v1.StatusCode != 200 {
			t.Fatalf("/v1/%s: status %d", name, v1.StatusCode)
		}
		if v1.Header.Get("Deprecation") != "" {
			t.Fatalf("/v1/%s carries a Deprecation header", name)
		}
		old, err := http.Get(ts.URL + "/" + name + "?q=ac")
		if err != nil {
			t.Fatal(err)
		}
		oldBody, _ := io.ReadAll(old.Body)
		old.Body.Close()
		if old.StatusCode != 200 {
			t.Fatalf("/%s: status %d", name, old.StatusCode)
		}
		if old.Header.Get("Deprecation") != "true" {
			t.Fatalf("/%s: missing Deprecation header", name)
		}
		if link := old.Header.Get("Link"); link != `</v1/`+name+`>; rel="successor-version"` {
			t.Fatalf("/%s: Link = %q", name, link)
		}
		if string(v1Body) != string(oldBody) {
			t.Fatalf("/%s: alias answered %s, /v1 answered %s", name, oldBody, v1Body)
		}
	}
	// POST aliases carry the headers too.
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(`["ac"]`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("/batch alias missing Deprecation header")
	}
	if resp, err = http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`["ac"]`)); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/batch: status %d", resp.StatusCode)
	}
}

// TestUnifiedErrorShape: representative failures across endpoints all
// answer {"error": {"code", "message"}} with stable codes.
func TestUnifiedErrorShape(t *testing.T) {
	app := testApp(t)
	app.cfg.maxPatternLen = 8
	ts := httptest.NewServer(app.mux())
	defer ts.Close()
	shTS, _ := batchServer(t, defaultConfig()) // sharded: no approx capability
	for _, tc := range []struct {
		url    string
		status int
		code   string
	}{
		{ts.URL + "/v1/contains", http.StatusBadRequest, codeBadRequest},
		{ts.URL + "/v1/findall?q=a&limit=0", http.StatusBadRequest, codeBadRequest},
		{ts.URL + "/v1/contains?q=aaaaaaaaa", http.StatusBadRequest, codePatternTooLong},
		{ts.URL + "/v1/approx?q=ac&k=9", http.StatusBadRequest, codeBadRequest},
		{shTS.URL + "/v1/approx?q=ac", http.StatusNotImplemented, codeUnsupported},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var env errEnvelope
		derr := json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("%s: undecodable error body: %v", tc.url, derr)
		}
		if resp.StatusCode != tc.status || env.Error.Code != tc.code || env.Error.Message == "" {
			t.Fatalf("%s: status %d code %q message %q, want %d/%q",
				tc.url, resp.StatusCode, env.Error.Code, env.Error.Message, tc.status, tc.code)
		}
	}
	// A panicking handler answers the same shape with code internal.
	fq := newBlockingQuerier()
	fq.panicky = true
	pts := httptest.NewServer(newQueryServer(fq, defaultConfig()).mux())
	defer pts.Close()
	resp, err := http.Get(pts.URL + "/v1/findall?q=a")
	if err != nil {
		t.Fatal(err)
	}
	var env errEnvelope
	derr := json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if derr != nil || resp.StatusCode != http.StatusInternalServerError || env.Error.Code != codeInternal {
		t.Fatalf("panic envelope: status %d, env %+v, decode %v", resp.StatusCode, env, derr)
	}
}

// cachedTestServer fronts a sharded index with the serving cache, the
// way main() wires it.
func cachedTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	text := []byte(strings.Repeat("aaccacaacaggtacca", 64))
	sh, err := spine.BuildSharded(text, 256, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := wrapCache(sh, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newQueryServer(q, defaultConfig()).mux())
	t.Cleanup(ts.Close)
	return ts
}

// TestCachedServing is the end-to-end acceptance check: repeated and
// absent queries through a cache-fronted server surface hit/miss and
// negative-filter counters in both the JSON snapshot and the
// Prometheus exposition, attributed per endpoint.
func TestCachedServing(t *testing.T) {
	ts := cachedTestServer(t)
	var out map[string]any
	// Identical findalls: scan then hits.
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/v1/findall?q=caacagg", &out)
	}
	// Contains on an absent pattern with foreign grams (longer than the
	// auto-selected filter q): rejected scan-free both times, never
	// reaching the cache.
	for i := 0; i < 2; i++ {
		getJSON(t, ts.URL+"/v1/contains?q=zzzzzzzzzzzzzzzz", &out)
	}

	var m struct {
		Cache struct {
			Enabled    bool  `json:"enabled"`
			Hits       int64 `json:"hits"`
			Misses     int64 `json:"misses"`
			NegRejects int64 `json:"negRejects"`
			Entries    int64 `json:"entries"`
			Bytes      int64 `json:"bytes"`
		} `json:"cache"`
		Endpoints map[string]struct {
			CacheHits   int64 `json:"cacheHits"`
			CacheMisses int64 `json:"cacheMisses"`
		} `json:"endpoints"`
	}
	getJSON(t, ts.URL+"/metrics", &m)
	if !m.Cache.Enabled {
		t.Fatalf("cache section disabled: %+v", m.Cache)
	}
	if m.Cache.Hits != 2 || m.Cache.Misses != 1 || m.Cache.NegRejects != 2 {
		t.Fatalf("cache counters = %+v, want hits 2 misses 1 negRejects 2", m.Cache)
	}
	if m.Cache.Entries == 0 || m.Cache.Bytes == 0 {
		t.Fatalf("cache size counters degenerate: %+v", m.Cache)
	}
	if ep := m.Endpoints["findall"]; ep.CacheHits != 2 || ep.CacheMisses != 1 {
		t.Fatalf("findall attribution = %+v, want 2 hits 1 miss", ep)
	}
	if ep := m.Endpoints["contains"]; ep.CacheHits != 2 || ep.CacheMisses != 0 {
		t.Fatalf("contains attribution = %+v, want 2 hits (negfilter) 0 misses", ep)
	}

	prom := promBody(t, ts.URL)
	for _, family := range []string{
		"spine_cache_hits_total 2",
		"spine_cache_misses_total 1",
		"spine_negfilter_rejects_total 2",
		"spine_negfilter_falsepos_total 0",
		`spine_http_cache_hits_total{endpoint="findall"} 2`,
		`spine_http_cache_misses_total{endpoint="findall"} 1`,
	} {
		if !strings.Contains(prom, family) {
			t.Fatalf("prometheus exposition missing %q:\n%s", family, prom)
		}
	}
}

// TestPromCacheFamiliesAlwaysPresent: an uncached server still emits
// the global cache/negfilter families (zeros), so scrapes and
// dashboards never miss the series.
func TestPromCacheFamiliesAlwaysPresent(t *testing.T) {
	ts := testServer(t)
	prom := promBody(t, ts.URL)
	for _, family := range []string{
		"spine_cache_hits_total 0",
		"spine_cache_misses_total 0",
		"spine_negfilter_rejects_total 0",
		"spine_negfilter_falsepos_total 0",
	} {
		if !strings.Contains(prom, family) {
			t.Fatalf("prometheus exposition missing %q", family)
		}
	}
	// But no per-endpoint attribution noise without a cache in the chain.
	if strings.Contains(prom, "spine_http_cache_") {
		t.Fatal("uncached server emitted per-endpoint cache series")
	}
}

// TestWrapCacheDisabled: -cache-bytes 0 serves the raw querier.
func TestWrapCacheDisabled(t *testing.T) {
	sh, err := spine.BuildSharded([]byte("acgtacgt"), 8, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := wrapCache(sh, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if q != spine.Querier(sh) {
		t.Fatal("cacheBytes 0 still wrapped the querier")
	}
	if q, err = wrapCache(sh, 1<<16, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.(*spine.CachedQuerier); !ok {
		t.Fatalf("wrapCache returned %T, want *spine.CachedQuerier", q)
	}
}

func promBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
