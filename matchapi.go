package spine

import (
	"context"
	"time"

	"github.com/spine-index/spine/internal/align"
	"github.com/spine-index/spine/internal/match"
	"github.com/spine-index/spine/internal/seq"
)

// Match is one maximal matching substring between the indexed text and a
// query (§4 of the paper): it occurs at QueryStart in the query and at
// every offset in DataStarts in the indexed text, and cannot be extended
// on either side at any of those positions.
type Match struct {
	QueryStart int
	Len        int
	DataStarts []int
}

// MatchInfo carries run metadata for a matching operation.
type MatchInfo struct {
	// Pairs is the total number of (query, data) position pairs reported.
	Pairs int
	// NodesChecked counts index nodes examined — SPINE's set-basis suffix
	// processing keeps this far below suffix-tree search (§4.1).
	NodesChecked int64
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// MaximalMatches finds all maximal matching substrings of length >= minLen
// between the indexed text and query, including repeated occurrences. The
// first occurrence of each match comes from the valid-path search; the
// repetitions are resolved in one deferred backbone scan.
func (x *Index) MaximalMatches(query []byte, minLen int) ([]Match, MatchInfo, error) {
	return x.MaximalMatchesContext(context.Background(), query, minLen)
}

// MaximalMatchesContext is MaximalMatches with cancellation: both the
// streaming pass and the final occurrence-resolution scan abort promptly
// (returning ctx.Err()) once the context ends.
func (x *Index) MaximalMatchesContext(ctx context.Context, query []byte, minLen int) ([]Match, MatchInfo, error) {
	rep, err := match.MaximalMatchesCtx(ctx, match.NewSpineEngine(x.c), x.Text(), query, minLen)
	if err != nil {
		return nil, MatchInfo{}, err
	}
	return convertReport(rep)
}

// MaximalMatches is the compact-layout variant; see Index.MaximalMatches.
// The compact layout stores the indexed text bit-packed; it is unpacked
// lazily on first use and cached.
func (x *Compact) MaximalMatches(query []byte, minLen int) ([]Match, MatchInfo, error) {
	return x.MaximalMatchesContext(context.Background(), query, minLen)
}

// MaximalMatchesContext is MaximalMatches with cancellation; see
// Index.MaximalMatchesContext.
func (x *Compact) MaximalMatchesContext(ctx context.Context, query []byte, minLen int) ([]Match, MatchInfo, error) {
	rep, err := match.MaximalMatchesCtx(ctx, match.NewCompactSpineEngine(x.c), x.data(), query, minLen)
	if err != nil {
		return nil, MatchInfo{}, err
	}
	return convertReport(rep)
}

// MaximalMatchesWithData is the old compact-layout entry point taking the
// indexed text explicitly; data must equal the original indexed string.
//
// Deprecated: the index now unpacks its own text — use
// Compact.MaximalMatches; for plain occurrence reads prefer the unified
// Query entry point.
func (x *Compact) MaximalMatchesWithData(data, query []byte, minLen int) ([]Match, MatchInfo, error) {
	rep, err := match.MaximalMatches(match.NewCompactSpineEngine(x.c), data, query, minLen)
	if err != nil {
		return nil, MatchInfo{}, err
	}
	return convertReport(rep)
}

func convertReport(rep match.Report) ([]Match, MatchInfo, error) {
	out := make([]Match, len(rep.Matches))
	for i, m := range rep.Matches {
		out[i] = Match{QueryStart: m.QueryStart, Len: m.Len, DataStarts: m.DataStarts}
	}
	return out, MatchInfo{Pairs: rep.Pairs, NodesChecked: rep.NodesChecked, Elapsed: rep.Elapsed}, nil
}

// Anchor is one segment of a chained alignment: query[QStart:QStart+Len]
// equals the indexed text at [RStart:RStart+Len].
type Anchor struct {
	QStart, RStart, Len int
}

// Alignment is a MUMmer-style global alignment skeleton: the heaviest
// colinear chain of reference-unique maximal matches.
type Alignment struct {
	Chain                      []Anchor
	Anchored                   int
	QueryCoverage, RefCoverage float64
}

// Align extracts reference-unique maximal matches of length >= minAnchor
// between the indexed text and query and chains them colinearly — the
// global-alignment application the paper's introduction motivates.
func (x *Index) Align(query []byte, minAnchor int) (Alignment, error) {
	al, err := align.Align(match.NewSpineEngine(x.c), x.Text(), query, minAnchor)
	if err != nil {
		return Alignment{}, err
	}
	return convertAlignment(al), nil
}

// AlignBothStrands aligns query and its DNA reverse complement against the
// indexed text, returning one alignment per orientation. Reverse-strand
// anchor coordinates refer to the forward query: the anchor's query window
// matches the reference after reverse complementation. The query must be
// DNA.
func (x *Index) AlignBothStrands(query []byte, minAnchor int) (forward, reverse Alignment, err error) {
	if _, err := seq.ReverseComplement(query); err != nil {
		return Alignment{}, Alignment{}, err
	}
	f, r, err := align.AlignBothStrands(match.NewSpineEngine(x.c), x.Text(), query, minAnchor, seq.MustReverseComplement)
	if err != nil {
		return Alignment{}, Alignment{}, err
	}
	return convertAlignment(f), convertAlignment(r), nil
}

// ReverseComplement returns the reverse complement of a DNA sequence
// (a<->t, c<->g, case-preserving); it fails on non-DNA bytes.
func ReverseComplement(s []byte) ([]byte, error) { return seq.ReverseComplement(s) }

func convertAlignment(al align.Alignment) Alignment {
	out := Alignment{
		Anchored:      al.Anchored,
		QueryCoverage: al.QueryCoverage,
		RefCoverage:   al.RefCoverage,
		Chain:         make([]Anchor, len(al.Chain)),
	}
	for i, a := range al.Chain {
		out.Chain[i] = Anchor{QStart: a.QStart, RStart: a.RStart, Len: a.Len}
	}
	return out
}
