package spine

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// FuzzQueryBatch drives the batch pipeline from fuzz inputs: the first
// argument becomes the indexed text, the second splits on 0xFF into a
// multi-pattern batch (empty segments give empty patterns, repeated
// segments give duplicates, long segments exceed the sharded
// maxPattern). Every item must match the per-pattern sequential oracle
// on all three index flavors.
//
// `go test` runs the seed corpus; `go test -fuzz=FuzzQueryBatch` mines
// (make check runs a 10s smoke).
func FuzzQueryBatch(f *testing.F) {
	f.Add([]byte("aaccacaaca"), []byte("ac\xffca\xff\xffac\xffacaacaacaa"), uint8(0))
	f.Add([]byte("abababab"), []byte("ba\xffab\xffba"), uint8(3))
	f.Add([]byte(""), []byte("a\xff"), uint8(1))
	f.Add([]byte("acgtacgtacgt"), []byte("acgt\xffzz\xffacgt\xffg"), uint8(2))
	f.Fuzz(func(t *testing.T, rawText, rawPats []byte, rawLimit uint8) {
		if len(rawText) > 2000 || len(rawPats) > 512 {
			return
		}
		text := fuzzDNA(rawText)
		var patterns [][]byte
		for _, seg := range bytes.Split(rawPats, []byte{0xFF}) {
			if len(patterns) >= 16 {
				break
			}
			if len(seg) > 64 {
				seg = seg[:64]
			}
			patterns = append(patterns, fuzzPattern(seg))
		}
		limit := int(rawLimit % 8) // 0 = unlimited, else small caps
		idx := Build(text)
		comp, err := idx.Compact(DNA)
		if err != nil {
			t.Fatalf("Compact(%q): %v", text, err)
		}
		const shardSize, maxPat = 16, 8
		sh, err := BuildSharded(text, shardSize, maxPat, 2)
		if err != nil {
			t.Fatalf("BuildSharded(%q): %v", text, err)
		}
		ctx := context.Background()
		for name, q := range map[string]legacyQuerier{"index": idx, "compact": comp, "sharded": sh} {
			results, err := q.QueryBatch(ctx, patterns, BatchOptions{Limit: limit})
			if err != nil {
				t.Fatalf("%s: QueryBatch: %v", name, err)
			}
			if len(results) != len(patterns) {
				t.Fatalf("%s: %d results for %d patterns", name, len(results), len(patterns))
			}
			for i, p := range patterns {
				want, wantErr := q.FindAllLimitContext(ctx, p, limit)
				got := results[i]
				if (got.Err == nil) != (wantErr == nil) {
					t.Fatalf("%s pattern %q: batch Err %v vs sequential %v", name, p, got.Err, wantErr)
				}
				if wantErr != nil {
					if !errors.Is(got.Err, ErrPatternTooLong) {
						t.Fatalf("%s pattern %q: Err = %v, want ErrPatternTooLong", name, p, got.Err)
					}
					continue
				}
				if got.Truncated != want.Truncated || len(got.Positions) != len(want.Positions) {
					t.Fatalf("%s pattern %q limit %d: got %v/%v, want %v/%v",
						name, p, limit, got.Positions, got.Truncated, want.Positions, want.Truncated)
				}
				for j := range want.Positions {
					if got.Positions[j] != want.Positions[j] {
						t.Fatalf("%s pattern %q: %v, want %v", name, p, got.Positions, want.Positions)
					}
				}
			}
		}
	})
}

// FuzzCacheEquivalence drives the serving cache from fuzz inputs: the
// same query stream runs against a raw sharded index, a Cached wrapper
// with the negative filter, and a Cached wrapper without it. All three
// must agree on every semantic field — the negative filter may never
// produce a false negative, and a warm cache entry must answer exactly
// like the scan that primed it.
//
// `go test` runs the seed corpus; make check runs a 10s smoke.
func FuzzCacheEquivalence(f *testing.F) {
	f.Add([]byte("aaccacaacaggtacca"), []byte("ac\xffzzzz\xffac\xffcaacagg"), uint8(0))
	f.Add([]byte("acgtacgtacgtacgt"), []byte("acgt\xffttttt\xffacgt"), uint8(2))
	f.Add([]byte("aaaaaaaa"), []byte("\xffa\xffaaaaaaaaaaaaaaaaa"), uint8(1))
	f.Fuzz(func(t *testing.T, rawText, rawPats []byte, rawLimit uint8) {
		if len(rawText) == 0 || len(rawText) > 2000 || len(rawPats) > 512 {
			return
		}
		text := fuzzDNA(rawText)
		var patterns [][]byte
		for _, seg := range bytes.Split(rawPats, []byte{0xFF}) {
			if len(patterns) >= 12 {
				break
			}
			if len(seg) > 32 {
				seg = seg[:32]
			}
			patterns = append(patterns, fuzzPattern(seg))
		}
		limit := int(rawLimit % 8)
		sh, err := BuildSharded(text, 16, 8, 2)
		if err != nil {
			t.Fatalf("BuildSharded(%q): %v", text, err)
		}
		cached, err := Cached(sh, CacheConfig{MaxBytes: 1 << 16, NegFilterQ: 4})
		if err != nil {
			t.Fatalf("Cached: %v", err)
		}
		plain, err := Cached(sh, CacheConfig{MaxBytes: 1 << 16, DisableNegFilter: true})
		if err != nil {
			t.Fatalf("Cached (no filter): %v", err)
		}
		ctx := context.Background()
		// Two rounds so the second answers from warm cache entries.
		for round := 0; round < 2; round++ {
			for _, p := range patterns {
				for kind := KindContains; kind <= KindCount; kind++ {
					opts := QueryOptions{Kind: kind, Limit: limit}
					want, werr := sh.Query(ctx, p, opts)
					for name, q := range map[string]Querier{"negfilter": cached, "cacheonly": plain} {
						got, gerr := q.Query(ctx, p, opts)
						if (gerr == nil) != (werr == nil) {
							t.Fatalf("%s %v %q: err %v vs raw %v", name, kind, p, gerr, werr)
						}
						if werr != nil {
							if !errors.Is(gerr, ErrPatternTooLong) {
								t.Fatalf("%s %v %q: err = %v", name, kind, p, gerr)
							}
							continue
						}
						if got.Found != want.Found || got.Position != want.Position ||
							got.Count != want.Count || got.Truncated != want.Truncated ||
							len(got.Positions) != len(want.Positions) {
							t.Fatalf("%s %v %q round %d: got %+v, want %+v", name, kind, p, round, got, want)
						}
						for j := range want.Positions {
							if got.Positions[j] != want.Positions[j] {
								t.Fatalf("%s %v %q: positions %v, want %v", name, kind, p, got.Positions, want.Positions)
							}
						}
					}
				}
			}
		}
		// Definitive check of the q-gram lemma: a negfilter reject means
		// the pattern truly is absent from the text.
		st := cached.CacheStats()
		if st.NegRejects > 0 {
			for _, p := range patterns {
				res, err := cached.Query(ctx, p, QueryOptions{Kind: KindContains})
				if err != nil {
					continue
				}
				if res.Source == SourceNegFilter && bytes.Contains(text, p) {
					t.Fatalf("false negative: filter rejected %q present in %q", p, text)
				}
			}
		}
	})
}

// fuzzDNA maps arbitrary bytes onto the DNA alphabet so the index
// structures under test actually occur.
func fuzzDNA(raw []byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = "acgt"[b%4]
	}
	return out
}

// fuzzPattern maps a fuzz segment to mostly-DNA letters with an
// occasional out-of-alphabet byte, exercising the compact layout's
// failed-encode path.
func fuzzPattern(seg []byte) []byte {
	out := make([]byte, len(seg))
	for i, b := range seg {
		if b%7 == 6 {
			out[i] = 'z'
			continue
		}
		out[i] = "acgt"[b%4]
	}
	return out
}
