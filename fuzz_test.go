package spine

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// FuzzQueryBatch drives the batch pipeline from fuzz inputs: the first
// argument becomes the indexed text, the second splits on 0xFF into a
// multi-pattern batch (empty segments give empty patterns, repeated
// segments give duplicates, long segments exceed the sharded
// maxPattern). Every item must match the per-pattern sequential oracle
// on all three index flavors.
//
// `go test` runs the seed corpus; `go test -fuzz=FuzzQueryBatch` mines
// (make check runs a 10s smoke).
func FuzzQueryBatch(f *testing.F) {
	f.Add([]byte("aaccacaaca"), []byte("ac\xffca\xff\xffac\xffacaacaacaa"), uint8(0))
	f.Add([]byte("abababab"), []byte("ba\xffab\xffba"), uint8(3))
	f.Add([]byte(""), []byte("a\xff"), uint8(1))
	f.Add([]byte("acgtacgtacgt"), []byte("acgt\xffzz\xffacgt\xffg"), uint8(2))
	f.Fuzz(func(t *testing.T, rawText, rawPats []byte, rawLimit uint8) {
		if len(rawText) > 2000 || len(rawPats) > 512 {
			return
		}
		text := fuzzDNA(rawText)
		var patterns [][]byte
		for _, seg := range bytes.Split(rawPats, []byte{0xFF}) {
			if len(patterns) >= 16 {
				break
			}
			if len(seg) > 64 {
				seg = seg[:64]
			}
			patterns = append(patterns, fuzzPattern(seg))
		}
		limit := int(rawLimit % 8) // 0 = unlimited, else small caps
		idx := Build(text)
		comp, err := idx.Compact(DNA)
		if err != nil {
			t.Fatalf("Compact(%q): %v", text, err)
		}
		const shardSize, maxPat = 16, 8
		sh, err := BuildSharded(text, shardSize, maxPat, 2)
		if err != nil {
			t.Fatalf("BuildSharded(%q): %v", text, err)
		}
		ctx := context.Background()
		for name, q := range map[string]Querier{"index": idx, "compact": comp, "sharded": sh} {
			results, err := q.QueryBatch(ctx, patterns, BatchOptions{Limit: limit})
			if err != nil {
				t.Fatalf("%s: QueryBatch: %v", name, err)
			}
			if len(results) != len(patterns) {
				t.Fatalf("%s: %d results for %d patterns", name, len(results), len(patterns))
			}
			for i, p := range patterns {
				want, wantErr := q.FindAllLimitContext(ctx, p, limit)
				got := results[i]
				if (got.Err == nil) != (wantErr == nil) {
					t.Fatalf("%s pattern %q: batch Err %v vs sequential %v", name, p, got.Err, wantErr)
				}
				if wantErr != nil {
					if !errors.Is(got.Err, ErrPatternTooLong) {
						t.Fatalf("%s pattern %q: Err = %v, want ErrPatternTooLong", name, p, got.Err)
					}
					continue
				}
				if got.Truncated != want.Truncated || len(got.Positions) != len(want.Positions) {
					t.Fatalf("%s pattern %q limit %d: got %v/%v, want %v/%v",
						name, p, limit, got.Positions, got.Truncated, want.Positions, want.Truncated)
				}
				for j := range want.Positions {
					if got.Positions[j] != want.Positions[j] {
						t.Fatalf("%s pattern %q: %v, want %v", name, p, got.Positions, want.Positions)
					}
				}
			}
		}
	})
}

// fuzzDNA maps arbitrary bytes onto the DNA alphabet so the index
// structures under test actually occur.
func fuzzDNA(raw []byte) []byte {
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = "acgt"[b%4]
	}
	return out
}

// fuzzPattern maps a fuzz segment to mostly-DNA letters with an
// occasional out-of-alphabet byte, exercising the compact layout's
// failed-encode path.
func fuzzPattern(seg []byte) []byte {
	out := make([]byte, len(seg))
	for i, b := range seg {
		if b%7 == 6 {
			out[i] = 'z'
			continue
		}
		out[i] = "acgt"[b%4]
	}
	return out
}
