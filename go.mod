module github.com/spine-index/spine

go 1.22
