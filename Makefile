GO ?= go

.PHONY: build test check vet race lint bench serve fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint fails on vet findings or unformatted files (gofmt prints the
# offenders; the shell guard turns any output into a non-zero exit).
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# check is the pre-merge gate: lint plus the race-enabled test suite
# (covers the concurrent telemetry, trace and server paths).
check: lint race

fmt:
	gofmt -l -w .

bench:
	$(GO) run ./cmd/spinebench -exp all -divide 100

serve:
	$(GO) run ./cmd/spineserve -synthetic eco -divide 10 -addr :8080
