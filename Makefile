GO ?= go

.PHONY: build test check vet race lint bench serve fmt fuzz-smoke cover

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint fails on vet findings, unformatted files (gofmt prints the
# offenders; the shell guard turns any output into a non-zero exit), or
# a new exported query method bypassing the unified Query API.
lint: vet
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	@sh scripts/lint_query_surface.sh

# fuzz-smoke mines the batch-pipeline, cache-equivalence,
# scan-equivalence, SWAR-kernel, mapped-layout and parallel-scan fuzz
# targets briefly — enough to shake out fresh regressions without
# stalling the gate.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzQueryBatch$$' -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz '^FuzzCacheEquivalence$$' -fuzztime 10s .
	$(GO) test -run '^$$' -fuzz '^FuzzScanEquivalence$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzSWAREquivalence$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzMappedEquivalence$$' -fuzztime 10s ./internal/core
	$(GO) test -run '^$$' -fuzz '^FuzzParallelScanEquivalence$$' -fuzztime 10s ./internal/core

# cover runs the suite shuffled (ordering bugs surface) with a coverage
# profile and prints the per-function summary tail.
cover:
	$(GO) test -shuffle=on -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -20

# check is the pre-merge gate: lint plus the race-enabled test suite
# (covers the concurrent telemetry, trace and server paths) plus a
# short fuzz smoke of the batch query pipeline.
check: lint race fuzz-smoke

fmt:
	gofmt -l -w .

bench:
	$(GO) run ./cmd/spinebench -exp all -divide 100

serve:
	$(GO) run ./cmd/spineserve -synthetic eco -divide 10 -addr :8080
