GO ?= go

.PHONY: build test check vet race bench serve fmt

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the pre-merge gate: static analysis plus the race-enabled
# test suite (covers the concurrent telemetry and server paths).
check: vet race

fmt:
	gofmt -l -w .

bench:
	$(GO) run ./cmd/spinebench -exp all -divide 100

serve:
	$(GO) run ./cmd/spineserve -synthetic eco -divide 10 -addr :8080
