// Multiindex: one SPINE index over many strings (the generalized index of
// §1.1), used here as a tiny sequence database: index a set of gene
// sequences once, then locate a probe across all of them.
package main

import (
	"fmt"

	"github.com/spine-index/spine"
)

func main() {
	genes := map[string][]byte{
		"geneA": []byte("atgaccgattacgagaaacctga"),
		"geneB": []byte("atggcagattacgagatttcctaa"),
		"geneC": []byte("atgttcggcgcatcgtag"),
	}
	names := []string{"geneA", "geneB", "geneC"}
	texts := make([][]byte, len(names))
	for i, n := range names {
		texts[i] = genes[n]
	}

	// '#' never occurs in the sequences, so no match can span two genes.
	g, err := spine.BuildGeneralized(texts, '#')
	if err != nil {
		panic(err)
	}
	fmt.Printf("indexed %d sequences in one SPINE\n", g.Strings())

	for _, probe := range []string{"gattacgaga", "atg", "cccccc"} {
		locs := g.FindAll([]byte(probe))
		if len(locs) == 0 {
			fmt.Printf("probe %-12q not found\n", probe)
			continue
		}
		fmt.Printf("probe %-12q found %d times:", probe, len(locs))
		for _, l := range locs {
			fmt.Printf(" %s@%d", names[l.StringID], l.Offset)
		}
		fmt.Println()
	}

	// A pattern overlapping a boundary is never matched: the separator
	// keeps sequences distinct.
	boundary := append(append([]byte{}, genes["geneA"][len(genes["geneA"])-3:]...), genes["geneB"][:3]...)
	fmt.Printf("cross-boundary probe %q found: %v\n", boundary, g.Contains(boundary))
}
