// Proteinindex: SPINE over the 20-letter amino-acid alphabet (§5.2 of the
// paper) with the full production workflow: build online, freeze to the
// compact 5-bit-per-residue layout, serialize to disk, reload, and run
// exact and approximate motif queries.
package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/spine-index/spine"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	residues := []byte("ACDEFGHIKLMNPQRSTVWY")

	// A synthetic proteome with duplicated (paralogous) domains.
	const target = 50_000
	proteome := make([]byte, 0, target)
	domain := randomPeptide(rng, residues, 120)
	for len(proteome) < target {
		if rng.Float64() < 0.15 {
			// Insert a mutated copy of the shared domain.
			for _, r := range domain {
				if rng.Float64() < 0.05 {
					r = residues[rng.Intn(len(residues))]
				}
				proteome = append(proteome, r)
			}
		} else {
			proteome = append(proteome, randomPeptide(rng, residues, 200)...)
		}
	}

	idx := spine.Build(proteome)
	st := idx.Stats()
	fmt.Printf("proteome: %d residues; max label %d (2-byte fields ok: %v)\n",
		st.Length, st.MaxLEL, st.MaxLEL < 65535)

	// Freeze with the protein alphabet: 5 bits per residue.
	compact, err := idx.Compact(spine.Protein)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compact layout: %.2f bytes per residue\n", compact.BytesPerChar())

	// Serialize and reload (what a service would ship to query nodes).
	var blob bytes.Buffer
	if err := compact.Save(&blob); err != nil {
		panic(err)
	}
	blobSize := blob.Len()
	loaded, err := spine.LoadCompact(&blob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("serialized: %d bytes; reloaded %d residues\n", blobSize, loaded.Len())

	// Exact motif search on the reloaded index.
	motif := domain[40:52]
	hits := loaded.FindAll(motif)
	fmt.Printf("exact motif %q: %d hits\n", motif, len(hits))

	// Approximate search tolerates the paralog mutations (runs on the
	// online index, which carries the approximate-search machinery).
	approx := idx.FindAllWithin(motif, 1, spine.Hamming)
	fmt.Printf("within 1 substitution:   %d hits\n", len(approx))
	if len(approx) < len(hits) {
		panic("approximate search found fewer hits than exact")
	}

	// The shared domain is the proteome's longest repeat.
	lrs, first, second := idx.LongestRepeatedSubstring()
	fmt.Printf("longest repeated segment: %d residues (at %d and %d)\n", len(lrs), first, second)
}

func randomPeptide(rng *rand.Rand, residues []byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = residues[rng.Intn(len(residues))]
	}
	return p
}
