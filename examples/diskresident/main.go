// Diskresident: build and query a disk-resident SPINE index under a tight
// buffer budget, comparing plain LRU against the paper's "retain the top
// of the Link Table" replacement policy (§6.2 / Figure 8).
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/spine-index/spine"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	genome := synthesize(rng, 300_000)
	probes := make([][]byte, 200)
	for i := range probes {
		off := rng.Intn(len(genome) - 24)
		probes[i] = genome[off : off+24]
	}

	for _, pol := range []spine.DiskPolicy{spine.PolicyLRU, spine.PolicyTopRetention} {
		dir, err := os.MkdirTemp("", "spine-disk")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)

		// ~70 pages of buffer for a ~5300-page index: disk-bound on
		// purpose.
		d, err := spine.CreateDisk(dir, spine.DiskOptions{BufferPages: 70, Policy: pol})
		if err != nil {
			panic(err)
		}
		if err := d.AppendString(genome); err != nil {
			panic(err)
		}
		if err := d.Flush(); err != nil {
			panic(err)
		}
		build := d.IOStats()

		// Point lookups (first occurrence): the access pattern is the
		// root-adjacent head of the backbone plus scattered ribs, which is
		// exactly what the top-retention policy keeps resident.
		found := 0
		for _, p := range probes {
			pos, err := d.Find(p)
			if err != nil {
				panic(err)
			}
			if pos >= 0 {
				found++
			}
		}
		total := d.IOStats()
		name := "lru          "
		if pol == spine.PolicyTopRetention {
			name = "top-retention"
		}
		fmt.Printf("%s  build I/O: %6d reads %6d writes | search reads: %6d | hit rate %.3f | %d/%d probes found\n",
			name, build.Reads, build.Writes, total.Reads-build.Reads, d.HitRate(), found, len(probes))
		if err := d.Close(); err != nil {
			panic(err)
		}
	}
	fmt.Println("top-retention keeps the hot head of the backbone resident: fewer search reads at equal budget")
}

func synthesize(rng *rand.Rand, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 1000 && rng.Float64() < 0.35 {
			l := 100 + rng.Intn(400)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			s = append(s, s[start:start+l]...)
		} else {
			for i := 0; i < 128 && len(s) < n; i++ {
				s = append(s, "acgt"[rng.Intn(4)])
			}
		}
	}
	return s[:n]
}
