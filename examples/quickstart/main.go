// Quickstart: build a SPINE index, query it, and inspect its structure —
// using the paper's running example string "aaccacaaca" (Figures 1-3).
package main

import (
	"fmt"

	"github.com/spine-index/spine"
)

func main() {
	idx := spine.Build([]byte("aaccacaaca"))

	// Substring queries: valid paths in the index are exactly the
	// substrings of the text.
	fmt.Println(`Contains("cacaa"):`, idx.Contains([]byte("cacaa"))) // true
	fmt.Println(`Contains("accaa"):`, idx.Contains([]byte("accaa"))) // false: the paper's false-positive example, blocked by PT labels

	// First and all occurrences (the paper's §4 walkthrough: target node
	// buffer 3, 6, 9 -> starts 1, 4, 7).
	fmt.Println(`Find("ac"):   `, idx.Find([]byte("ac")))
	fmt.Println(`FindAll("ac"):`, idx.FindAll([]byte("ac")))

	// SPINE is online: extend the index and query again.
	idx.AppendString([]byte("ac"))
	fmt.Println(`after append, FindAll("ac"):`, idx.FindAll([]byte("ac")))

	// Structure: exactly one node per character, a third of nodes carry
	// downstream edges, labels stay tiny.
	st := idx.Stats()
	fmt.Printf("nodes=%d ribs=%d extribs=%d maxLEL=%d\n",
		st.Length, st.RibCount, st.ExtribCount, st.MaxLEL)

	// Freeze into the compact layout for the paper's <12 B/char figure
	// (tiny strings have fixed overheads; genome-scale strings land below
	// 12).
	c, err := idx.Compact(spine.DNA)
	if err != nil {
		panic(err)
	}
	fmt.Printf("compact: %d bytes total, FindAll(\"ac\") = %v\n",
		c.SizeBytes(), c.FindAll([]byte("ac")))
}
