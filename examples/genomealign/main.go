// Genomealign: the application the paper's introduction motivates —
// MUMmer-style global alignment between two related genomes, driven by
// SPINE's maximal-match search.
//
// The example synthesizes a 200 kbp "reference" genome and derives a
// "sample" from it by point mutation plus a structural deletion, then:
//
//  1. finds all maximal matching substrings above a threshold (the §4
//     complex matching operation),
//  2. keeps the reference-unique ones as anchors, and
//  3. chains anchors colinearly into a global alignment skeleton.
package main

import (
	"fmt"
	"math/rand"

	"github.com/spine-index/spine"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A reference genome with genome-like repeat structure.
	ref := synthesize(rng, 200_000)

	// The sample: 0.5% point mutations and a 5 kbp deletion.
	sample := append([]byte{}, ref...)
	for i := range sample {
		if rng.Float64() < 0.005 {
			sample[i] = "acgt"[rng.Intn(4)]
		}
	}
	del := len(sample) / 3
	sample = append(sample[:del], sample[del+5_000:]...)

	idx := spine.Build(ref)

	// All maximal matches above the threshold, with repetition counts.
	matches, info, err := idx.MaximalMatches(sample, 25)
	if err != nil {
		panic(err)
	}
	unique := 0
	for _, m := range matches {
		if len(m.DataStarts) == 1 {
			unique++
		}
	}
	fmt.Printf("maximal matches >= 25bp: %d (%d reference-unique), %d pairs\n",
		len(matches), unique, info.Pairs)
	fmt.Printf("nodes checked: %d, elapsed: %v\n", info.NodesChecked, info.Elapsed)

	// Chain reference-unique anchors into an alignment skeleton.
	al, err := idx.Align(sample, 25)
	if err != nil {
		panic(err)
	}
	fmt.Printf("alignment chain: %d anchors, %d bp anchored, query coverage %.1f%%\n",
		len(al.Chain), al.Anchored, 100*al.QueryCoverage)

	// The deletion appears as a gap in reference coordinates between
	// consecutive anchors.
	biggestGap, at := 0, 0
	for i := 1; i < len(al.Chain); i++ {
		gap := al.Chain[i].RStart - (al.Chain[i-1].RStart + al.Chain[i-1].Len)
		if gap > biggestGap {
			biggestGap, at = gap, al.Chain[i-1].RStart+al.Chain[i-1].Len
		}
	}
	fmt.Printf("largest reference gap: %d bp near position %d (the engineered 5000 bp deletion)\n",
		biggestGap, at)
}

// synthesize produces a repeat-structured random genome: fresh bases
// interleaved with mutated copies of earlier segments.
func synthesize(rng *rand.Rand, n int) []byte {
	s := make([]byte, 0, n)
	for len(s) < n {
		if len(s) > 1000 && rng.Float64() < 0.3 {
			l := 200 + rng.Intn(800)
			if l > len(s) {
				l = len(s)
			}
			start := rng.Intn(len(s) - l + 1)
			for _, b := range s[start : start+l] {
				if rng.Float64() < 0.02 {
					b = "acgt"[rng.Intn(4)]
				}
				s = append(s, b)
			}
		} else {
			for i := 0; i < 256 && len(s) < n; i++ {
				s = append(s, "acgt"[rng.Intn(4)])
			}
		}
	}
	return s[:n]
}
