package spine

import (
	"context"
	"fmt"

	"github.com/spine-index/spine/internal/core"
)

// QueryKind selects what a Query call computes about a pattern.
type QueryKind uint8

const (
	// KindContains answers "does p occur" (QueryResult.Found); the first
	// occurrence offset comes for free in QueryResult.Position.
	KindContains QueryKind = iota
	// KindFind answers the first occurrence offset (QueryResult.Position,
	// -1 when absent).
	KindFind
	// KindFindAll enumerates occurrence offsets (QueryResult.Positions),
	// bounded by QueryOptions.Limit.
	KindFindAll
	// KindCount answers the occurrence count (QueryResult.Count) with a
	// streaming scan; no positions are materialized.
	KindCount
)

// String names the kind for telemetry labels and cache keys.
func (k QueryKind) String() string {
	switch k {
	case KindContains:
		return "contains"
	case KindFind:
		return "find"
	case KindFindAll:
		return "findall"
	case KindCount:
		return "count"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// QueryOptions tunes one Query call.
type QueryOptions struct {
	// Kind selects the computation; the zero value is KindContains.
	Kind QueryKind
	// Limit caps KindFindAll's occurrence count (<= 0 means unlimited).
	// Other kinds ignore it.
	Limit int
	// NoCache makes a Cached querier bypass its result cache and
	// negative filter for this call. Uncached queriers ignore it.
	NoCache bool
}

// ResultSource tells how a Cached querier produced a QueryResult.
type ResultSource uint8

const (
	// SourceScan: the underlying index answered (cache miss, or no cache).
	SourceScan ResultSource = iota
	// SourceCache: served from the result cache, no index work.
	SourceCache
	// SourceNegFilter: the q-gram negative filter proved the pattern
	// absent in O(|P|), no backbone work.
	SourceNegFilter
)

// String returns the source's stable label, used verbatim in wide
// events, slow-log entries and per-endpoint cache metrics.
func (s ResultSource) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceNegFilter:
		return "negfilter"
	default:
		return "scan"
	}
}

// effectiveLimit normalizes the limit for cache identity: only
// KindFindAll results depend on it.
func (o QueryOptions) effectiveLimit() int {
	if o.Kind == KindFindAll && o.Limit > 0 {
		return o.Limit
	}
	return 0
}

// coreQuerier is the slice of the core engine Query needs; both core
// layouts satisfy it.
type coreQuerier interface {
	EndNodeCtx(ctx context.Context, p []byte) (int32, bool)
	FindAllCtx(ctx context.Context, p []byte, limit int) (core.ScanResult, error)
	CountCtx(ctx context.Context, p []byte) (int, error)
}

// queryOn answers one Query against a single (unsharded) core index.
func queryOn(ctx context.Context, c coreQuerier, p []byte, opts QueryOptions) (QueryResult, error) {
	switch opts.Kind {
	case KindContains, KindFind:
		if err := ctx.Err(); err != nil {
			return QueryResult{Position: -1}, err
		}
		res := QueryResult{Position: -1, NodesChecked: int64(len(p))}
		if end, ok := c.EndNodeCtx(ctx, p); ok {
			res.Found = true
			res.Position = int(end) - len(p)
		}
		return res, nil
	case KindFindAll:
		scan, err := c.FindAllCtx(ctx, p, opts.Limit)
		res := queryResultOf(scan)
		res.normalize()
		return res, err
	case KindCount:
		n, err := c.CountCtx(ctx, p)
		return QueryResult{Count: n, Found: n > 0, Position: -1}, err
	default:
		return QueryResult{Position: -1}, fmt.Errorf("%w: %d", ErrBadQueryKind, opts.Kind)
	}
}

// Query implements Querier: the single entrypoint for every read
// (contains, find, findall, count), selected by opts.Kind. All legacy
// per-method entry points are thin shims over it, and the Cached
// decorator intercepts exactly this method — one choke point for the
// result cache and the negative filter.
func (x *Index) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	return queryOn(ctx, x.c, p, opts)
}

// Query implements Querier; see Index.Query. Patterns with letters
// outside the alphabet simply do not occur.
func (x *Compact) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	return queryOn(ctx, x.c, p, opts)
}

// Query implements Querier; see Index.Query. Patterns longer than
// MaxPattern fail with ErrPatternTooLong.
func (s *Sharded) Query(ctx context.Context, p []byte, opts QueryOptions) (QueryResult, error) {
	if err := s.checkPattern(p); err != nil {
		return QueryResult{Position: -1}, err
	}
	switch opts.Kind {
	case KindContains, KindFind:
		return s.findFirst(ctx, p)
	case KindFindAll:
		res, err := s.findAllLimit(ctx, p, opts.Limit)
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		res.normalize()
		return res, nil
	case KindCount:
		n, err := s.count(ctx, p)
		if err != nil {
			return QueryResult{Position: -1}, err
		}
		return QueryResult{Count: n, Found: n > 0, Position: -1}, nil
	default:
		return QueryResult{Position: -1}, fmt.Errorf("%w: %d", ErrBadQueryKind, opts.Kind)
	}
}
