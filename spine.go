package spine

import (
	"context"
	"fmt"
	"io"
	"sync"

	"github.com/spine-index/spine/internal/core"
	"github.com/spine-index/spine/internal/seq"
)

// Index is an in-memory SPINE index over a byte string. Construction is
// online (Append) or one-shot (Build). An Index is safe for concurrent
// readers once construction stops; it is not safe to Append concurrently
// with queries.
type Index struct {
	c *core.Index
}

// Build constructs the index for text in one pass. The input is copied.
func Build(text []byte) *Index {
	return &Index{c: core.Build(text)}
}

// New returns an empty index ready for online Append. The index over the
// first k appended characters is always complete and queryable, and equals
// the first-k fragment of any longer index (prefix partitioning, §2.7 of
// the paper).
func New() *Index { return &Index{c: core.New()} }

// Append extends the index by one character.
func (x *Index) Append(c byte) { x.c.Append(c) }

// AppendString extends the index by every byte of s.
func (x *Index) AppendString(s []byte) {
	for _, c := range s {
		x.c.Append(c)
	}
}

// Len returns the number of indexed characters.
func (x *Index) Len() int { return x.c.Len() }

// Text returns the indexed string. SPINE stores it as the backbone's
// vertebra labels; the returned slice is internal storage — do not modify.
func (x *Index) Text() []byte { return x.c.Text() }

// Contains reports whether p is a substring of the indexed text.
func (x *Index) Contains(p []byte) bool { return x.c.Contains(p) }

// Find returns the start offset of the first occurrence of p, or -1.
func (x *Index) Find(p []byte) int { return x.c.Find(p) }

// FindAll returns every occurrence start offset of p (including
// overlapping occurrences) in increasing order; nil if p does not occur.
func (x *Index) FindAll(p []byte) []int { return x.c.FindAll(p) }

// FindAllAppend appends every occurrence start offset of p to dst in
// increasing order and returns the extended slice. Passing a reused
// buffer makes steady-state occurrence listing allocation-free.
func (x *Index) FindAllAppend(p []byte, dst []int) []int { return x.c.FindAllAppend(p, dst) }

// Count returns the number of occurrences of p. The scan streams; no
// per-occurrence memory is allocated.
func (x *Index) Count(p []byte) int { return x.c.Count(p) }

// countPrefixContext counts occurrences of p whose start offset is below
// maxStart (maxStart < 0 means unbounded). Sharded.CountContext uses it
// to count each shard's own slice, excluding overlap-region starts that
// belong to the next shard.
func (x *Index) countPrefixContext(ctx context.Context, p []byte, maxStart int) (int, error) {
	return x.c.CountPrefixCtx(ctx, p, maxStart)
}

// Stats reports the index's structural measurements.
func (x *Index) Stats() Stats {
	st := x.c.ComputeStats()
	return Stats{
		Length:      st.Length,
		MaxLEL:      int(st.MaxLEL),
		MaxPT:       int(st.MaxPT),
		MaxPRT:      int(st.MaxPRT),
		RibCount:    st.RibCount,
		ExtribCount: st.ExtribCount,
		FanoutNodes: append([]int(nil), st.FanoutNodes...),
		MemoryBytes: x.c.MemoryBytes(),
	}
}

// LinkHistogram buckets link destinations into equal backbone segments and
// returns the percentage of links landing in each (Figure 8 of the paper);
// the distribution is top-heavy on genomic data, which motivates the
// top-retention disk buffering policy.
func (x *Index) LinkHistogram(buckets int) []float64 { return x.c.LinkHistogram(buckets) }

// Compact freezes the index into the read-only §5 table layout: bit-packed
// character labels, 2-byte numeric labels with an overflow table, and
// per-fanout rib tables — under 12 bytes per DNA character. The alphabet
// must cover every indexed character.
func (x *Index) Compact(a *Alphabet) (*Compact, error) {
	if a == nil || a.Size() == 0 {
		return nil, ErrEmptyAlphabet
	}
	ci, err := core.Freeze(x.c, (*seq.Alphabet)(a))
	if err != nil {
		return nil, fmt.Errorf("spine: %w", err)
	}
	return &Compact{c: ci}, nil
}

// Stats summarizes a built index's structure (Tables 2-4 of the paper).
type Stats struct {
	// Length is the indexed string length (== node count minus the root).
	Length int
	// MaxLEL, MaxPT, MaxPRT are the largest numeric edge label values.
	MaxLEL, MaxPT, MaxPRT int
	// RibCount and ExtribCount are the total downstream cross edges.
	RibCount, ExtribCount int
	// FanoutNodes[k] counts nodes with exactly k downstream cross edges
	// (the last bucket accumulates larger fan-outs).
	FanoutNodes []int
	// MemoryBytes is the approximate heap footprint of this (reference)
	// layout; Compact.SizeBytes is the optimized figure.
	MemoryBytes int64
}

// Compact is the frozen, read-optimized SPINE layout. Queries take raw
// letters; a pattern containing a letter outside the alphabet simply does
// not occur.
type Compact struct {
	c *core.CompactIndex

	// textOnce/text lazily unpack the bit-packed vertebra labels the
	// first time an operation (MaximalMatches' left-maximality checks)
	// needs the raw string; queries never touch it.
	textOnce sync.Once
	text     []byte
}

// data returns the indexed text, unpacking it from the compact layout on
// first use and caching it for subsequent calls.
func (x *Compact) data() []byte {
	x.textOnce.Do(func() { x.text = x.c.Text() })
	return x.text
}

// Len returns the number of indexed characters.
func (x *Compact) Len() int { return x.c.Len() }

// Contains reports whether p is a substring of the indexed text.
func (x *Compact) Contains(p []byte) bool { return x.c.Contains(p) }

// Find returns the start offset of the first occurrence of p, or -1.
func (x *Compact) Find(p []byte) int { return x.c.Find(p) }

// FindAll returns every occurrence start offset of p in increasing order.
func (x *Compact) FindAll(p []byte) []int { return x.c.FindAll(p) }

// FindAllAppend appends every occurrence start offset of p to dst in
// increasing order and returns the extended slice; see Index.FindAllAppend.
func (x *Compact) FindAllAppend(p []byte, dst []int) []int { return x.c.FindAllAppend(p, dst) }

// ForEachOccurrence streams every occurrence start offset of p in
// increasing order, stopping early when fn returns false.
func (x *Compact) ForEachOccurrence(p []byte, fn func(start int) bool) {
	x.c.ForEachOccurrence(p, fn)
}

// Count returns the number of occurrences of p. The scan streams; no
// per-occurrence memory is allocated.
func (x *Compact) Count(p []byte) int { return x.c.Count(p) }

// SizeBytes returns the layout's total footprint.
func (x *Compact) SizeBytes() int64 { return x.c.SizeBytes() }

// BytesPerChar returns SizeBytes divided by the text length — the paper's
// headline "< 12 bytes per indexed character" figure.
func (x *Compact) BytesPerChar() float64 { return x.c.BytesPerChar() }

// Save serializes the compact index (versioned, checksummed format).
func (x *Compact) Save(w io.Writer) error { return x.c.Save(w) }

// LoadCompact deserializes a compact index written by Compact.Save,
// verifying structure and checksum; truncated or corrupted inputs are
// rejected with an error.
func LoadCompact(r io.Reader) (*Compact, error) {
	c, err := core.ReadCompact(r)
	if err != nil {
		return nil, err
	}
	return &Compact{c: c}, nil
}

// CompactBuilder constructs a Compact index directly in the table layout,
// online — no intermediate pointer-based index. Rows migrate between rib
// tables as nodes gain edges, the construction mode of the paper's
// prototype (§5).
type CompactBuilder struct {
	b *core.CompactBuilder
}

// NewCompactBuilder returns an empty builder over the given alphabet.
func NewCompactBuilder(a *Alphabet) (*CompactBuilder, error) {
	if a == nil || a.Size() == 0 {
		return nil, ErrEmptyAlphabet
	}
	b, err := core.NewCompactBuilder((*seq.Alphabet)(a))
	if err != nil {
		return nil, err
	}
	return &CompactBuilder{b: b}, nil
}

// Append extends the index by one character; the letter must belong to the
// alphabet.
func (cb *CompactBuilder) Append(letter byte) error { return cb.b.Append(letter) }

// AppendString extends the index by every byte of s.
func (cb *CompactBuilder) AppendString(s []byte) error {
	for _, c := range s {
		if err := cb.b.Append(c); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of appended characters.
func (cb *CompactBuilder) Len() int { return cb.b.Len() }

// Finish returns the completed compact index; the builder must not be
// used afterwards.
func (cb *CompactBuilder) Finish() *Compact { return &Compact{c: cb.b.Finish()} }

// ForEachOccurrence streams every occurrence start offset of p in
// increasing order, stopping early when fn returns false — FindAll without
// materializing the result slice.
func (x *Index) ForEachOccurrence(p []byte, fn func(start int) bool) {
	x.c.ForEachOccurrence(p, fn)
}

// Text reconstructs the indexed string from the compact layout's packed
// vertebra labels (the index is its own text).
func (x *Compact) Text() []byte { return x.c.Text() }

// Stats reports the compact index's structural measurements, computed
// from the table layout itself (works on loaded indexes too).
func (x *Compact) Stats() Stats {
	st := x.c.ComputeStats()
	return Stats{
		Length:      st.Length,
		MaxLEL:      int(st.MaxLEL),
		MaxPT:       int(st.MaxPT),
		MaxPRT:      int(st.MaxPRT),
		RibCount:    st.RibCount,
		ExtribCount: st.ExtribCount,
		FanoutNodes: append([]int(nil), st.FanoutNodes...),
		MemoryBytes: x.c.SizeBytes(),
	}
}
