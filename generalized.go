package spine

import (
	"bytes"
	"fmt"

	"github.com/spine-index/spine/internal/core"
)

// Generalized is a single SPINE index over multiple strings (§1.1 of the
// paper: "a single SPINE index can be used to index multiple different
// strings, using techniques similar to those employed in Generalized
// Suffix Trees"). The strings are joined by a separator character that
// occurs in none of them, so no match can span two strings.
type Generalized struct {
	c         *core.Index
	separator byte
	// bounds[i] is the global start offset of string i in the joined text;
	// bounds has one extra entry holding the total joined length + 1.
	bounds []int
}

// Location is one occurrence inside a generalized index.
type Location struct {
	// StringID is the index of the containing string as passed to
	// BuildGeneralized.
	StringID int
	// Offset is the occurrence's start offset within that string.
	Offset int
}

// BuildGeneralized indexes every string in texts as one SPINE, joined by
// separator. It fails if any text contains the separator byte.
func BuildGeneralized(texts [][]byte, separator byte) (*Generalized, error) {
	g := &Generalized{c: core.New(), separator: separator}
	for i, t := range texts {
		if bytes.IndexByte(t, separator) >= 0 {
			return nil, fmt.Errorf("%w: string %d contains %q", ErrSeparatorInText, i, separator)
		}
		g.bounds = append(g.bounds, g.c.Len())
		for _, c := range t {
			g.c.Append(c)
		}
		if i < len(texts)-1 {
			g.c.Append(separator)
		}
	}
	g.bounds = append(g.bounds, g.c.Len()+1)
	return g, nil
}

// Strings returns the number of indexed strings.
func (g *Generalized) Strings() int { return len(g.bounds) - 1 }

// Contains reports whether p occurs inside any indexed string. Patterns
// containing the separator never occur.
func (g *Generalized) Contains(p []byte) bool {
	if bytes.IndexByte(p, g.separator) >= 0 {
		return false
	}
	return g.c.Contains(p)
}

// FindAll returns every occurrence of p across all indexed strings in
// (StringID, Offset) order.
func (g *Generalized) FindAll(p []byte) []Location {
	if bytes.IndexByte(p, g.separator) >= 0 {
		return nil
	}
	glob := g.c.FindAll(p)
	if len(p) == 0 {
		// The empty pattern occurs at every in-string offset; enumerate
		// per string rather than per joined position.
		var out []Location
		for id := 0; id < g.Strings(); id++ {
			for off := 0; off <= g.lenOf(id); off++ {
				out = append(out, Location{StringID: id, Offset: off})
			}
		}
		return out
	}
	out := make([]Location, 0, len(glob))
	for _, pos := range glob {
		id := g.stringAt(pos)
		out = append(out, Location{StringID: id, Offset: pos - g.bounds[id]})
	}
	return out
}

// lenOf returns the length of string id.
func (g *Generalized) lenOf(id int) int {
	end := g.bounds[id+1] - 1 // exclude the separator (or the +1 tail pad)
	return end - g.bounds[id]
}

// stringAt locates the string containing global text offset pos.
func (g *Generalized) stringAt(pos int) int {
	lo, hi := 0, len(g.bounds)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if g.bounds[mid] <= pos {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ForEachOccurrence streams every occurrence of p across all indexed
// strings in (StringID, Offset) order, stopping early if fn returns false.
func (g *Generalized) ForEachOccurrence(p []byte, fn func(Location) bool) {
	if bytes.IndexByte(p, g.separator) >= 0 {
		return
	}
	if len(p) == 0 {
		for _, loc := range g.FindAll(nil) {
			if !fn(loc) {
				return
			}
		}
		return
	}
	g.c.ForEachOccurrence(p, func(pos int) bool {
		id := g.stringAt(pos)
		return fn(Location{StringID: id, Offset: pos - g.bounds[id]})
	})
}
